// Package policy implements SoftCell's high-level service policies (§2.2):
// prioritised clauses whose predicates range over subscriber attributes and
// application types, and whose actions name a middlebox chain plus QoS and
// access control. It also compiles a policy against one subscriber's (fixed)
// attributes into the per-UE packet classifiers the local agent caches
// (§4.2).
package policy

import (
	"fmt"
	"sort"
	"strings"
)

// AppType classifies a flow's application. It is carried in the simulator's
// packet App field; real deployments derive it from port numbers or DPI at
// the access edge.
type AppType uint8

// Application types used throughout the examples and experiments.
const (
	AppAny      AppType = 0 // wildcard in predicates only
	AppWeb      AppType = 1
	AppVideo    AppType = 2
	AppVoIP     AppType = 3
	AppTracking AppType = 4 // M2M fleet tracking
	AppSSH      AppType = 5
	AppOther    AppType = 6
)

// AllApps enumerates the concrete (non-wildcard) application types.
var AllApps = []AppType{AppWeb, AppVideo, AppVoIP, AppTracking, AppSSH, AppOther}

func (a AppType) String() string {
	switch a {
	case AppAny:
		return "any"
	case AppWeb:
		return "web"
	case AppVideo:
		return "video"
	case AppVoIP:
		return "voip"
	case AppTracking:
		return "tracking"
	case AppSSH:
		return "ssh"
	case AppOther:
		return "other"
	default:
		return fmt.Sprintf("app(%d)", uint8(a))
	}
}

// AppFromPort infers the application type from a destination port, the
// fallback the access edge uses when the packet carries no explicit label.
func AppFromPort(dstPort uint16) AppType {
	switch dstPort {
	case 80, 8080, 443:
		return AppWeb
	case 554, 8554, 1935:
		return AppVideo
	case 5060, 5061:
		return AppVoIP
	case 5684:
		return AppTracking
	case 22:
		return AppSSH
	default:
		return AppOther
	}
}

// Attributes are a subscriber's (mostly static) properties, known to the
// controller from the subscriber database.
type Attributes struct {
	Provider   string // home carrier, e.g. "A"; roamers carry theirs
	Plan       string // billing plan: "gold", "silver", ...
	DeviceType string // "phone", "tablet", "m2m-fleet", "m2m-meter", ...
	Model      string // device model, e.g. "old-phone-3"
	OSVersion  string
	Roaming    bool
	OverCap    bool // usage cap exceeded
	Parental   bool // parental controls enabled
}

// Predicate is a boolean expression over (attributes, application).
type Predicate interface {
	Eval(attr Attributes, app AppType) bool
	String() string
}

type truePred struct{}

func (truePred) Eval(Attributes, AppType) bool { return true }
func (truePred) String() string                { return "true" }

// True matches everything.
func True() Predicate { return truePred{} }

type andPred []Predicate

func (a andPred) Eval(at Attributes, ap AppType) bool {
	for _, p := range a {
		if !p.Eval(at, ap) {
			return false
		}
	}
	return true
}
func (a andPred) String() string { return join(a, " && ") }

// And matches when all sub-predicates match.
func And(ps ...Predicate) Predicate { return andPred(ps) }

type orPred []Predicate

func (o orPred) Eval(at Attributes, ap AppType) bool {
	for _, p := range o {
		if p.Eval(at, ap) {
			return true
		}
	}
	return false
}
func (o orPred) String() string { return "(" + join(o, " || ") + ")" }

// Or matches when any sub-predicate matches.
func Or(ps ...Predicate) Predicate { return orPred(ps) }

type notPred struct{ p Predicate }

func (n notPred) Eval(at Attributes, ap AppType) bool { return !n.p.Eval(at, ap) }
func (n notPred) String() string                      { return "!(" + n.p.String() + ")" }

// Not negates a predicate.
func Not(p Predicate) Predicate { return notPred{p} }

func join(ps []Predicate, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, sep)
}

// AttrField names an attribute for Attr predicates.
type AttrField uint8

// Attribute fields.
const (
	FieldProvider AttrField = iota
	FieldPlan
	FieldDeviceType
	FieldModel
	FieldOSVersion
)

func (f AttrField) String() string {
	switch f {
	case FieldProvider:
		return "provider"
	case FieldPlan:
		return "plan"
	case FieldDeviceType:
		return "device"
	case FieldModel:
		return "model"
	case FieldOSVersion:
		return "os"
	default:
		return fmt.Sprintf("field(%d)", uint8(f))
	}
}

type attrPred struct {
	field AttrField
	value string
}

func (a attrPred) Eval(at Attributes, _ AppType) bool {
	switch a.field {
	case FieldProvider:
		return at.Provider == a.value
	case FieldPlan:
		return at.Plan == a.value
	case FieldDeviceType:
		return at.DeviceType == a.value
	case FieldModel:
		return at.Model == a.value
	case FieldOSVersion:
		return at.OSVersion == a.value
	default:
		return false
	}
}
func (a attrPred) String() string { return fmt.Sprintf("%s=%q", a.field, a.value) }

// Attr matches a string attribute exactly.
func Attr(field AttrField, value string) Predicate { return attrPred{field, value} }

type appPred struct{ app AppType }

func (a appPred) Eval(_ Attributes, ap AppType) bool {
	return a.app == AppAny || a.app == ap
}
func (a appPred) String() string { return "app=" + a.app.String() }

// App matches the flow's application type.
func App(a AppType) Predicate { return appPred{a} }

type boolPred struct {
	name string
	get  func(Attributes) bool
	want bool
}

func (b boolPred) Eval(at Attributes, _ AppType) bool { return b.get(at) == b.want }
func (b boolPred) String() string                     { return fmt.Sprintf("%s=%v", b.name, b.want) }

// Roaming matches the roaming flag.
func Roaming(want bool) Predicate {
	return boolPred{"roaming", func(a Attributes) bool { return a.Roaming }, want}
}

// OverCap matches the usage-cap flag.
func OverCap(want bool) Predicate {
	return boolPred{"overcap", func(a Attributes) bool { return a.OverCap }, want}
}

// Parental matches the parental-controls flag.
func Parental(want bool) Predicate {
	return boolPred{"parental", func(a Attributes) bool { return a.Parental }, want}
}

// QoS is a coarse quality-of-service class; higher is more urgent.
type QoS uint8

// QoS classes.
const (
	QoSBestEffort QoS = 0
	QoSVideo      QoS = 1
	QoSVoice      QoS = 2
	QoSLowLatency QoS = 3
)

// Action says how matching traffic is handled: whether it is admitted, the
// ordered middlebox chain it must traverse, and its QoS class. The chain
// names middlebox *functions*; the controller picks instances (§2.2: "The
// action does not indicate a specific instance").
type Action struct {
	Allow bool
	Chain []string // ordered middlebox function names
	QoS   QoS
}

// Deny is the drop action.
func Deny() Action { return Action{Allow: false} }

// Via builds an allow action through the named middlebox functions.
func Via(chain ...string) Action { return Action{Allow: true, Chain: chain} }

// WithQoS returns a copy of the action with the QoS class set.
func (a Action) WithQoS(q QoS) Action { a.QoS = q; return a }

func (a Action) String() string {
	if !a.Allow {
		return "deny"
	}
	s := "allow"
	if len(a.Chain) > 0 {
		s += " via " + strings.Join(a.Chain, ">")
	}
	if a.QoS != QoSBestEffort {
		s += fmt.Sprintf(" qos=%d", a.QoS)
	}
	return s
}

// Clause is one prioritised policy rule.
type Clause struct {
	Priority int // higher wins
	Pred     Predicate
	Action   Action
	Name     string // optional label for diagnostics
}

func (c Clause) String() string {
	return fmt.Sprintf("[%d] %s -> %s", c.Priority, c.Pred, c.Action)
}

// Policy is an ordered set of clauses. Build with Add; clause IDs are the
// insertion indices and remain stable.
type Policy struct {
	clauses []Clause
	// byPriority caches evaluation order: descending priority, then
	// insertion order (stable disambiguation for equal priorities).
	byPriority []int
	dirty      bool
}

// Add appends a clause and returns its stable ID.
func (p *Policy) Add(c Clause) int {
	if c.Pred == nil {
		c.Pred = True()
	}
	p.clauses = append(p.clauses, c)
	p.dirty = true
	return len(p.clauses) - 1
}

// Len reports the number of clauses.
func (p *Policy) Len() int { return len(p.clauses) }

// Clause returns the clause with the given ID.
func (p *Policy) Clause(id int) (Clause, bool) {
	if id < 0 || id >= len(p.clauses) {
		return Clause{}, false
	}
	return p.clauses[id], true
}

func (p *Policy) order() []int {
	if p.dirty || p.byPriority == nil {
		p.byPriority = make([]int, len(p.clauses))
		for i := range p.byPriority {
			p.byPriority[i] = i
		}
		sort.SliceStable(p.byPriority, func(a, b int) bool {
			return p.clauses[p.byPriority[a]].Priority > p.clauses[p.byPriority[b]].Priority
		})
		p.dirty = false
	}
	return p.byPriority
}

// Match returns the ID of the highest-priority clause matching the
// subscriber and application, or ok=false when nothing matches.
func (p *Policy) Match(attr Attributes, app AppType) (id int, ok bool) {
	for _, i := range p.order() {
		if p.clauses[i].Pred.Eval(attr, app) {
			return i, true
		}
	}
	return 0, false
}

// ClassifierEntry is one compiled per-UE packet classifier: for flows of
// application App, apply clause Clause. The local agent turns these into
// microflow rules once it knows the policy tag (§4.2).
type ClassifierEntry struct {
	App    AppType
	Clause int
	Action Action
}

// Compile specialises the policy for one subscriber. Because attributes are
// fixed per UE, the policy collapses to at most one entry per application
// type — exactly the classifier list the controller ships to a local agent.
// Applications with no matching clause are omitted (default-deny).
func (p *Policy) Compile(attr Attributes) []ClassifierEntry {
	var out []ClassifierEntry
	for _, app := range AllApps {
		if id, ok := p.Match(attr, app); ok {
			out = append(out, ClassifierEntry{App: app, Clause: id, Action: p.clauses[id].Action})
		}
	}
	return out
}

// Middlebox function names used by the example policy and tests.
const (
	MBFirewall   = "firewall"
	MBTranscoder = "transcoder"
	MBEchoCancel = "echo-cancel"
	MBIDS        = "ids"
	MBNAT        = "nat"
	MBCache      = "web-cache"
)

// ExampleCarrierPolicy reproduces Table 1 of the paper: carrier A's policy
// with a roaming agreement with carrier B.
func ExampleCarrierPolicy() *Policy {
	p := &Policy{}
	// 1. Carrier B's roamers fall back onto A's network, but through a
	// firewall to avoid abuse.
	p.Add(Clause{Priority: 60, Name: "roaming-B",
		Pred:   Attr(FieldProvider, "B"),
		Action: Via(MBFirewall)})
	// 2. Subscribers from all other carriers are disallowed.
	p.Add(Clause{Priority: 50, Name: "foreign-deny",
		Pred:   And(Not(Attr(FieldProvider, "A")), Not(Attr(FieldProvider, "B"))),
		Action: Deny()})
	// 3. Video for "silver" subscribers goes through a transcoder after the
	// firewall.
	p.Add(Clause{Priority: 40, Name: "silver-video",
		Pred:   And(Attr(FieldProvider, "A"), Attr(FieldPlan, "silver"), App(AppVideo)),
		Action: Via(MBFirewall, MBTranscoder).WithQoS(QoSVideo)})
	// 4. VoIP goes through echo cancellation after the firewall.
	p.Add(Clause{Priority: 30, Name: "voip",
		Pred:   And(Attr(FieldProvider, "A"), App(AppVoIP)),
		Action: Via(MBFirewall, MBEchoCancel).WithQoS(QoSVoice)})
	// 5. M2M fleet tracking is forwarded with high priority for low latency.
	p.Add(Clause{Priority: 20, Name: "m2m-tracking",
		Pred:   And(Attr(FieldProvider, "A"), Attr(FieldDeviceType, "m2m-fleet"), App(AppTracking)),
		Action: Via(MBFirewall).WithQoS(QoSLowLatency)})
	// Default: all of A's traffic through a firewall.
	p.Add(Clause{Priority: 10, Name: "default-A",
		Pred:   Attr(FieldProvider, "A"),
		Action: Via(MBFirewall)})
	return p
}
