package policy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var subA = Attributes{Provider: "A", Plan: "silver", DeviceType: "phone"}

func TestPredicates(t *testing.T) {
	cases := []struct {
		name string
		pred Predicate
		attr Attributes
		app  AppType
		want bool
	}{
		{"true", True(), Attributes{}, AppWeb, true},
		{"attr hit", Attr(FieldProvider, "A"), subA, AppWeb, true},
		{"attr miss", Attr(FieldProvider, "B"), subA, AppWeb, false},
		{"plan", Attr(FieldPlan, "silver"), subA, AppWeb, true},
		{"device", Attr(FieldDeviceType, "phone"), subA, AppWeb, true},
		{"model", Attr(FieldModel, "x"), subA, AppWeb, false},
		{"os", Attr(FieldOSVersion, "9"), Attributes{OSVersion: "9"}, AppWeb, true},
		{"app hit", App(AppVideo), subA, AppVideo, true},
		{"app miss", App(AppVideo), subA, AppWeb, false},
		{"app any", App(AppAny), subA, AppSSH, true},
		{"and", And(Attr(FieldProvider, "A"), App(AppVideo)), subA, AppVideo, true},
		{"and short", And(Attr(FieldProvider, "B"), App(AppVideo)), subA, AppVideo, false},
		{"or", Or(Attr(FieldProvider, "B"), App(AppVideo)), subA, AppVideo, true},
		{"or miss", Or(Attr(FieldProvider, "B"), App(AppVoIP)), subA, AppVideo, false},
		{"not", Not(Attr(FieldProvider, "B")), subA, AppWeb, true},
		{"roaming", Roaming(true), Attributes{Roaming: true}, AppWeb, true},
		{"roaming f", Roaming(false), Attributes{Roaming: true}, AppWeb, false},
		{"overcap", OverCap(true), Attributes{OverCap: true}, AppWeb, true},
		{"parental", Parental(true), Attributes{Parental: true}, AppWeb, true},
	}
	for _, tc := range cases {
		if got := tc.pred.Eval(tc.attr, tc.app); got != tc.want {
			t.Errorf("%s: Eval = %v, want %v", tc.name, got, tc.want)
		}
		if tc.pred.String() == "" {
			t.Errorf("%s: empty String", tc.name)
		}
	}
}

func TestPolicyMatchPriority(t *testing.T) {
	p := &Policy{}
	low := p.Add(Clause{Priority: 1, Pred: True(), Action: Via(MBFirewall)})
	high := p.Add(Clause{Priority: 9, Pred: App(AppVideo), Action: Via(MBTranscoder)})
	if id, ok := p.Match(subA, AppVideo); !ok || id != high {
		t.Fatalf("video should hit high-priority clause, got %d %v", id, ok)
	}
	if id, ok := p.Match(subA, AppWeb); !ok || id != low {
		t.Fatalf("web should fall through, got %d %v", id, ok)
	}
}

func TestPolicyStableTieBreak(t *testing.T) {
	p := &Policy{}
	first := p.Add(Clause{Priority: 5, Pred: True(), Action: Via("a")})
	p.Add(Clause{Priority: 5, Pred: True(), Action: Via("b")})
	if id, _ := p.Match(subA, AppWeb); id != first {
		t.Fatalf("equal priorities should prefer earlier clause, got %d", id)
	}
}

func TestPolicyNoMatch(t *testing.T) {
	p := &Policy{}
	p.Add(Clause{Priority: 1, Pred: Attr(FieldProvider, "Z"), Action: Via("x")})
	if _, ok := p.Match(subA, AppWeb); ok {
		t.Fatal("should not match")
	}
}

func TestPolicyAddAfterMatchInvalidatesCache(t *testing.T) {
	p := &Policy{}
	p.Add(Clause{Priority: 1, Pred: True(), Action: Via("a")})
	p.Match(subA, AppWeb) // build cache
	newID := p.Add(Clause{Priority: 10, Pred: True(), Action: Via("b")})
	if id, _ := p.Match(subA, AppWeb); id != newID {
		t.Fatalf("cache not invalidated: got %d, want %d", id, newID)
	}
}

func TestClauseLookup(t *testing.T) {
	p := &Policy{}
	id := p.Add(Clause{Priority: 1, Action: Via("x")}) // nil Pred defaults to True
	c, ok := p.Clause(id)
	if !ok || c.Pred == nil {
		t.Fatal("clause lookup / default pred")
	}
	if !c.Pred.Eval(subA, AppWeb) {
		t.Fatal("default predicate should be True")
	}
	if _, ok := p.Clause(99); ok {
		t.Fatal("out of range should fail")
	}
	if _, ok := p.Clause(-1); ok {
		t.Fatal("negative should fail")
	}
}

func TestExampleCarrierPolicyTable1(t *testing.T) {
	p := ExampleCarrierPolicy()
	if p.Len() != 6 {
		t.Fatalf("Len = %d, want 6 (5 Table-1 clauses + default)", p.Len())
	}
	cases := []struct {
		name  string
		attr  Attributes
		app   AppType
		chain []string
		allow bool
		qos   QoS
	}{
		{"roamer B firewalled", Attributes{Provider: "B"}, AppVideo, []string{MBFirewall}, true, QoSBestEffort},
		{"carrier C denied", Attributes{Provider: "C"}, AppWeb, nil, false, QoSBestEffort},
		{"silver video transcoded", Attributes{Provider: "A", Plan: "silver"}, AppVideo,
			[]string{MBFirewall, MBTranscoder}, true, QoSVideo},
		{"gold video plain", Attributes{Provider: "A", Plan: "gold"}, AppVideo, []string{MBFirewall}, true, QoSBestEffort},
		{"voip echo-cancel", Attributes{Provider: "A"}, AppVoIP, []string{MBFirewall, MBEchoCancel}, true, QoSVoice},
		{"m2m low latency", Attributes{Provider: "A", DeviceType: "m2m-fleet"}, AppTracking,
			[]string{MBFirewall}, true, QoSLowLatency},
		{"default web", Attributes{Provider: "A"}, AppWeb, []string{MBFirewall}, true, QoSBestEffort},
	}
	for _, tc := range cases {
		id, ok := p.Match(tc.attr, tc.app)
		if !ok {
			t.Errorf("%s: no match", tc.name)
			continue
		}
		c, _ := p.Clause(id)
		if c.Action.Allow != tc.allow {
			t.Errorf("%s: allow = %v", tc.name, c.Action.Allow)
		}
		if tc.allow {
			if len(c.Action.Chain) != len(tc.chain) {
				t.Errorf("%s: chain = %v, want %v", tc.name, c.Action.Chain, tc.chain)
				continue
			}
			for i := range tc.chain {
				if c.Action.Chain[i] != tc.chain[i] {
					t.Errorf("%s: chain = %v, want %v", tc.name, c.Action.Chain, tc.chain)
				}
			}
			if c.Action.QoS != tc.qos {
				t.Errorf("%s: qos = %d, want %d", tc.name, c.Action.QoS, tc.qos)
			}
		}
	}
}

func TestCompileMatchesPolicy(t *testing.T) {
	p := ExampleCarrierPolicy()
	attr := Attributes{Provider: "A", Plan: "silver", DeviceType: "m2m-fleet"}
	entries := p.Compile(attr)
	if len(entries) != len(AllApps) {
		t.Fatalf("compiled %d entries, want %d", len(entries), len(AllApps))
	}
	for _, e := range entries {
		id, ok := p.Match(attr, e.App)
		if !ok || id != e.Clause {
			t.Errorf("app %s: classifier says clause %d, policy says %d (%v)", e.App, e.Clause, id, ok)
		}
	}
}

func TestCompileOmitsUnmatched(t *testing.T) {
	p := &Policy{}
	p.Add(Clause{Priority: 1, Pred: App(AppVideo), Action: Via("x")})
	entries := p.Compile(subA)
	if len(entries) != 1 || entries[0].App != AppVideo {
		t.Fatalf("entries = %+v", entries)
	}
}

// Property: for random attributes and applications, the compiled classifier
// and the policy's Match agree — the invariant from DESIGN.md §6.
func TestCompileEquivalenceProperty(t *testing.T) {
	p := ExampleCarrierPolicy()
	providers := []string{"A", "B", "C"}
	plans := []string{"gold", "silver"}
	devices := []string{"phone", "m2m-fleet"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		attr := Attributes{
			Provider:   providers[rng.Intn(len(providers))],
			Plan:       plans[rng.Intn(len(plans))],
			DeviceType: devices[rng.Intn(len(devices))],
			Roaming:    rng.Intn(2) == 0,
		}
		compiled := make(map[AppType]int)
		for _, e := range p.Compile(attr) {
			compiled[e.App] = e.Clause
		}
		for _, app := range AllApps {
			id, ok := p.Match(attr, app)
			cid, cok := compiled[app]
			if ok != cok || (ok && id != cid) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppFromPort(t *testing.T) {
	cases := map[uint16]AppType{
		80: AppWeb, 443: AppWeb, 8080: AppWeb,
		554: AppVideo, 1935: AppVideo,
		5060: AppVoIP, 5061: AppVoIP,
		5684: AppTracking,
		22:   AppSSH,
		9999: AppOther,
	}
	for port, want := range cases {
		if got := AppFromPort(port); got != want {
			t.Errorf("AppFromPort(%d) = %s, want %s", port, got, want)
		}
	}
}

func TestStrings(t *testing.T) {
	if AppVideo.String() != "video" || AppType(200).String() == "" {
		t.Error("app strings")
	}
	if FieldPlan.String() != "plan" || AttrField(99).String() == "" {
		t.Error("field strings")
	}
	if Deny().String() != "deny" {
		t.Error("deny string")
	}
	a := Via(MBFirewall, MBTranscoder).WithQoS(QoSVideo)
	if a.String() != "allow via firewall>transcoder qos=1" {
		t.Errorf("action string = %q", a.String())
	}
	c := Clause{Priority: 3, Pred: True(), Action: Deny()}
	if c.String() == "" {
		t.Error("clause string")
	}
}
