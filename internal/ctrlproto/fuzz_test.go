package ctrlproto

import (
	"bytes"
	"testing"
)

// FuzzEncodeDecode round-trips arbitrary frames through writeFrame/readFrame:
// everything the writer accepts must read back identically, including the
// optional span-context header on traced frames.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(byte(MsgPathRequest), false, uint32(1), uint64(0), uint64(0), []byte("\x00\x00\x00\x07\x00\x00\x00\x2a"))
	f.Add(byte(MsgError), true, uint32(0xFFFFFFFF), uint64(0), uint64(0), []byte("boom"))
	f.Add(byte(0), false, uint32(0), uint64(0), uint64(0), []byte{})
	f.Add(byte(MsgPathRequest), false, uint32(7), uint64(42), uint64(9), []byte("\x00\x00\x00\x07\x00\x00\x00\x2a"))
	f.Add(byte(MsgHandoff), true, uint32(3), uint64(1<<63), uint64(0xFFFFFFFFFFFFFFFF), []byte("{}"))
	f.Fuzz(func(t *testing.T, typ byte, resp bool, reqID uint32, trace, span uint64, payload []byte) {
		if len(payload) > MaxFrame-6-traceBytes {
			payload = payload[:MaxFrame-6-traceBytes]
		}
		if trace == 0 {
			span = 0 // canonical form: untraced frames carry no span id
		}
		in := frame{typ: MsgType(typ), resp: resp, reqID: reqID, trace: trace, span: span, payload: payload}
		var buf bytes.Buffer
		if err := writeFrame(&buf, in); err != nil {
			t.Fatalf("writeFrame rejected an in-range frame: %v", err)
		}
		out, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame of written bytes: %v", err)
		}
		if out.typ != in.typ || out.resp != in.resp || out.reqID != in.reqID {
			t.Fatalf("frame header round-trip mismatch:\n in=%+v\nout=%+v", in, out)
		}
		if out.trace != in.trace || out.span != in.span {
			t.Fatalf("span context round-trip mismatch:\n in=%+v\nout=%+v", in, out)
		}
		if !bytes.Equal(out.payload, in.payload) {
			t.Fatalf("payload round-trip mismatch: in=%x out=%x", in.payload, out.payload)
		}
		if buf.Len() != 0 {
			t.Fatalf("readFrame left %d bytes unconsumed", buf.Len())
		}
	})
}

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must never
// accept a payload above MaxFrame, and any frame it does accept must survive
// a write/read round trip. (Unknown flag bits are dropped on re-encode, so
// the comparison is at the frame level, not the raw bytes.)
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte("\x00\x00\x00\x09\x01\x00\x00\x00\x00\x01abc"))
	f.Add([]byte("\x00\x00\x00\x06\x02\x01\x00\x00\x00\x2a"))
	f.Add([]byte("\x00\x00\x00\x00"))
	f.Add([]byte("\xFF\xFF\xFF\xFF\x01\x00"))
	// A traced path request: flags bit 1 set, 16-byte span context
	// (trace 5, span 3) between the request id and the payload.
	f.Add([]byte("\x00\x00\x00\x1e\x03\x02\x00\x00\x00\x07" +
		"\x00\x00\x00\x00\x00\x00\x00\x05\x00\x00\x00\x00\x00\x00\x00\x03" +
		"\x00\x00\x00\x07\x00\x00\x00\x2a"))
	// Traced flag set but the frame is too short to hold the context:
	// must be rejected, not mis-sliced.
	f.Add([]byte("\x00\x00\x00\x0a\x03\x02\x00\x00\x00\x07\x00\x00\x00\x05"))
	// Traced flag with an all-zero trace id: canonically untraced.
	f.Add([]byte("\x00\x00\x00\x16\x03\x02\x00\x00\x00\x07" +
		"\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x03"))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(in.payload) > MaxFrame {
			t.Fatalf("accepted a %d-byte payload above MaxFrame", len(in.payload))
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, in); err != nil {
			t.Fatalf("writeFrame of an accepted frame: %v", err)
		}
		out, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if out.typ != in.typ || out.resp != in.resp || out.reqID != in.reqID ||
			out.trace != in.trace || out.span != in.span || !bytes.Equal(out.payload, in.payload) {
			t.Fatalf("read/write/read mismatch:\n in=%+v\nout=%+v", in, out)
		}
	})
}
