// Package ctrlproto is SoftCell's control channel: the framed binary
// protocol local agents use to talk to the central controller (packet
// classifier fetches, policy-path requests, location queries during
// failover recovery). It plays the role OpenFlow+Floodlight play in the
// paper's prototype, reduced to the message set SoftCell actually needs.
//
// Framing: every message is
//
//	uint32  frame length (bytes after this field)
//	uint8   message type
//	uint8   flags (bit 0: response, bit 1: traced)
//	uint32  request id (correlates responses; both sides may originate)
//	[uint64 trace id, uint64 span id — only when the traced flag is set]
//	payload
//
// The optional trace header carries obs span context (DESIGN.md §16)
// across the wire, so a sampled request's causal tree spans both sides
// of the channel. Untraced frames — the 1023-in-1024 steady state —
// pay nothing: the header is absent and the flag bit is zero.
//
// The channel is symmetric: the controller can query agents (location
// recovery, §5.2) over the same connection agents use for requests.
package ctrlproto

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/packet"
)

// MsgType identifies a message.
type MsgType uint8

// Message types.
const (
	MsgHello MsgType = iota + 1
	MsgEcho
	MsgPathRequest
	MsgAttach
	MsgHandoff
	MsgLocationQuery
	MsgResolve
	MsgError
	MsgSnapshot
)

func (m MsgType) String() string {
	switch m {
	case MsgHello:
		return "hello"
	case MsgEcho:
		return "echo"
	case MsgPathRequest:
		return "path-request"
	case MsgAttach:
		return "attach"
	case MsgHandoff:
		return "handoff"
	case MsgLocationQuery:
		return "location-query"
	case MsgResolve:
		return "resolve"
	case MsgError:
		return "error"
	case MsgSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("msg(%d)", uint8(m))
	}
}

const (
	flagResponse = 1 << 0
	flagTraced   = 1 << 1
	headerBytes  = 10 // type(1) + flags(1) + reqID(4) after the length(4)
	traceBytes   = 16 // trace id(8) + span id(8), present iff flagTraced
	// MaxFrame bounds a frame so a corrupt peer cannot OOM us.
	MaxFrame = 1 << 20
)

// frame is one decoded message. trace/span carry the optional span
// context; trace 0 means untraced and serialises without the header.
type frame struct {
	typ     MsgType
	resp    bool
	reqID   uint32
	trace   uint64
	span    uint64
	payload []byte
}

// appendFrame serialises one frame onto buf.
func appendFrame(buf []byte, f frame) ([]byte, error) {
	if len(f.payload) > MaxFrame-headerBytes-traceBytes+4 {
		return buf, fmt.Errorf("ctrlproto: payload %d bytes exceeds frame limit", len(f.payload))
	}
	n := 6 + len(f.payload)
	if f.trace != 0 {
		n += traceBytes
	}
	var hdr [10]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
	hdr[4] = uint8(f.typ)
	if f.resp {
		hdr[5] |= flagResponse
	}
	if f.trace != 0 {
		hdr[5] |= flagTraced
	}
	binary.BigEndian.PutUint32(hdr[6:10], f.reqID)
	buf = append(buf, hdr[:]...)
	if f.trace != 0 {
		var tr [traceBytes]byte
		binary.BigEndian.PutUint64(tr[0:8], f.trace)
		binary.BigEndian.PutUint64(tr[8:16], f.span)
		buf = append(buf, tr[:]...)
	}
	return append(buf, f.payload...), nil
}

// writeFrame serialises and writes one frame.
func writeFrame(w io.Writer, f frame) error {
	buf, err := appendFrame(nil, f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// readFrame reads one frame from an arbitrary reader (tests, fuzzing).
// The read loop uses readFrameBuf instead: reading the header through an
// io.Reader forces the 4-byte scratch to the heap on every frame.
func readFrame(r io.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	return readFrameBody(r, binary.BigEndian.Uint32(lenBuf[:]))
}

// readFrameBuf reads one frame from the connection's buffered reader. The
// length header is peeked straight out of the bufio buffer, so the hot
// read loop allocates nothing for it.
func readFrameBuf(br *bufio.Reader) (frame, error) {
	hdr, err := br.Peek(4)
	if err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if _, err := br.Discard(4); err != nil {
		return frame{}, err
	}
	return readFrameBody(br, n)
}

// readFrameBody reads and parses the n-byte frame body.
func readFrameBody(r io.Reader, n uint32) (frame, error) {
	if n < 6 || n > MaxFrame {
		//lint:ignore hotpath malformed frame tears the connection down; never the steady state
		return frame{}, fmt.Errorf("ctrlproto: bad frame length %d", n)
	}
	//lint:ignore hotpath per-frame body buffer: it becomes the payload's backing array and outlives the read
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	f := frame{
		typ:   MsgType(body[0]),
		resp:  body[1]&flagResponse != 0,
		reqID: binary.BigEndian.Uint32(body[2:6]),
	}
	rest := body[6:]
	if body[1]&flagTraced != 0 {
		if len(rest) < traceBytes {
			//lint:ignore hotpath malformed frame tears the connection down; never the steady state
			return frame{}, fmt.Errorf("ctrlproto: traced frame length %d too short", n)
		}
		f.trace = binary.BigEndian.Uint64(rest[0:8])
		if f.trace != 0 {
			// A zero trace id is canonically untraced; dropping the span
			// keeps decode(encode(f)) == f for every accepted frame.
			f.span = binary.BigEndian.Uint64(rest[8:16])
		}
		rest = rest[traceBytes:]
	}
	f.payload = rest
	return f, nil
}

// PathRequest is the hot-path message: 8 bytes, hand-packed.
type PathRequest struct {
	BS     packet.BSID
	Clause uint32
}

func (p PathRequest) marshal() []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b[0:4], uint32(p.BS))
	binary.BigEndian.PutUint32(b[4:8], p.Clause)
	return b
}

func parsePathRequest(b []byte) (PathRequest, error) {
	if len(b) != 8 {
		return PathRequest{}, fmt.Errorf("ctrlproto: path request payload %d bytes", len(b))
	}
	return PathRequest{
		BS:     packet.BSID(binary.BigEndian.Uint32(b[0:4])),
		Clause: binary.BigEndian.Uint32(b[4:8]),
	}, nil
}

// PathReply carries the tag, 4 bytes.
type PathReply struct{ Tag packet.Tag }

func (p PathReply) marshal() []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, uint32(p.Tag))
	return b
}

func parsePathReply(b []byte) (PathReply, error) {
	if len(b) != 4 {
		return PathReply{}, fmt.Errorf("ctrlproto: path reply payload %d bytes", len(b))
	}
	return PathReply{Tag: packet.Tag(binary.BigEndian.Uint32(b))}, nil
}

// AttachRequest admits a UE (JSON payload: cold path).
type AttachRequest struct {
	IMSI string      `json:"imsi"`
	BS   packet.BSID `json:"bs"`
}

// AttachReply returns the UE record and its classifiers.
type AttachReply struct {
	UE          core.UE           `json:"ue"`
	Classifiers []core.Classifier `json:"classifiers"`
}

// HandoffRequest moves a UE.
type HandoffRequest struct {
	IMSI  string      `json:"imsi"`
	NewBS packet.BSID `json:"newBS"`
}

// SnapshotNotify is the controller-initiated push of one station's
// versioned agent view (JSON payload: snapshots are cold-path, the point
// is that packet-ins never wait for them). It is a notification, not a
// request: the agent swaps the snapshot in (or refuses a stale version)
// locally and never replies — a pusher wanting a publish barrier follows
// the push with an Echo on the same connection, which the receiving read
// loop processes strictly after the snapshot frame.
type SnapshotNotify struct {
	Version uint64         `json:"version"`
	View    core.AgentView `json:"view"`
}

// conn is the symmetric framed connection with request correlation.
// Outgoing frames group-commit: senders append to wbuf under bufMu, and
// whichever sender wins writeMu next moves the whole buffer with a single
// raw.Write. writeMu is always taken before bufMu, never the reverse.
//
// lock ordering: writeMu, bufMu
type conn struct {
	raw net.Conn
	// br buffers the read side so one transport read can deliver a whole
	// batch of frames; only readLoop touches it.
	br *bufio.Reader

	writeMu sync.Mutex // serialises flushes of wbuf to raw
	bufMu   sync.Mutex
	wbuf    []byte // guarded by bufMu; frames awaiting the next flush
	nbuf    int    // guarded by bufMu; frame count in wbuf
	nextID  uint32

	// Optional wire telemetry (nil-safe): flush batch sizes, observed by
	// whichever sender performs the write, and client retransmissions.
	flushFrames *obs.Histogram
	retrans     *obs.Counter
	// Optional span types (nil-safe): group-commit flush sections and
	// client-side request round trips.
	flushSpan *obs.SpanName
	rttSpan   *obs.SpanName

	// Span context of the most recent traced frame awaiting flush; the
	// flusher that carries it records the wire.flush span under it.
	wtrace uint64 // guarded by bufMu
	wspan  uint64 // guarded by bufMu

	mu      sync.Mutex
	pending map[uint32]chan frame
	closed  bool
	err     error
}

func newConn(raw net.Conn) *conn {
	return &conn{
		raw:     raw,
		br:      bufio.NewReaderSize(raw, 32<<10),
		pending: make(map[uint32]chan frame),
	}
}

// buffer enqueues one frame for a later flush. Responders use it to
// accumulate a batch of replies that a single flush then moves with one
// Write; request senders go through send, which flushes immediately.
func (c *conn) buffer(f frame) error {
	c.bufMu.Lock()
	defer c.bufMu.Unlock()
	buf, err := appendFrame(c.wbuf, f)
	if err != nil {
		return err
	}
	c.wbuf = buf
	c.nbuf++
	if f.trace != 0 {
		c.wtrace, c.wspan = f.trace, f.span
	}
	return nil
}

// flush moves every buffered frame to the wire in a single Write.
// Concurrent flushers coalesce: while one flusher's Write is in flight
// under writeMu, other senders append to wbuf and the next flusher moves
// them all at once — so a connection with a deep request pipeline pays one
// write rendezvous per batch, not per frame. Finding the buffer empty
// after taking writeMu means an earlier flusher already carried (and
// wrote) this sender's frame; a write error on a carried batch surfaces to
// that flusher, and to everyone else when the dead connection fails their
// next read or write.
func (c *conn) flush() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.bufMu.Lock()
	out, n := c.wbuf, c.nbuf
	tr, spn := c.wtrace, c.wspan
	c.wbuf, c.nbuf = nil, 0
	c.wtrace, c.wspan = 0, 0
	c.bufMu.Unlock()
	if len(out) == 0 {
		return nil
	}
	c.flushFrames.Observe(int64(n))
	sp := c.flushSpan.Start(obs.SpanContext{Trace: obs.TraceID(tr), Span: obs.SpanID(spn)})
	_, err := c.raw.Write(out)
	sp.End()
	c.bufMu.Lock()
	if c.wbuf == nil {
		c.wbuf = out[:0] // recycle the batch buffer while the line is idle
	}
	c.bufMu.Unlock()
	return err
}

// send enqueues one frame and flushes the write buffer.
func (c *conn) send(f frame) error {
	if err := c.buffer(f); err != nil {
		return err
	}
	return c.flush()
}

// ErrTimeout marks a request whose retransmission budget ran out without a
// response arriving.
var ErrTimeout = errors.New("ctrlproto: request timed out")

// request issues a request and blocks for its response (forever, if the
// connection stays up but silent — the pre-fault-injection behaviour).
func (c *conn) request(typ MsgType, payload []byte) (frame, error) {
	return c.requestCtx(obs.SpanContext{}, typ, payload, 0, 1)
}

// requestRetry is requestCtx without span context (untraced callers).
func (c *conn) requestRetry(typ MsgType, payload []byte, timeout time.Duration, attempts int) (frame, error) {
	return c.requestCtx(obs.SpanContext{}, typ, payload, timeout, attempts)
}

// requestCtx issues a request carrying span context on its frame and
// times the round trip under a wire.rtt child span, so attribution can
// split end-to-end latency into on-the-wire and remote-serve segments.
// The frame ships the rtt span's context (not the caller's) so the
// server's serve span and both sides' flush spans nest *inside* the
// round trip — they happen within it, and attribution's sum invariant
// needs the tree to say so.
func (c *conn) requestCtx(sc obs.SpanContext, typ MsgType, payload []byte, timeout time.Duration, attempts int) (frame, error) {
	sp := c.rttSpan.Start(sc)
	if sp.Context().Sampled() {
		sc = sp.Context()
	}
	f, err := c.requestRaw(sc, typ, payload, timeout, attempts)
	sp.End()
	return f, err
}

// requestRaw issues a request and blocks for its response, retransmitting
// with the SAME request id after each timeout until a response arrives or
// attempts sends have gone unanswered. timeout <= 0 disables the timer (a
// single send that blocks until the connection dies).
//
// Retransmission is idempotent at this layer: the pending entry stays
// registered across resends, the first response delivers it, and the read
// loop silently discards any later duplicates (their reqID no longer has a
// waiter). Callers are responsible for only retrying operations the remote
// side can absorb twice.
func (c *conn) requestRaw(sc obs.SpanContext, typ MsgType, payload []byte, timeout time.Duration, attempts int) (frame, error) {
	if attempts <= 0 {
		attempts = 1
	}
	id := atomic.AddUint32(&c.nextID, 1)
	ch := make(chan frame, 1)
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errors.New("ctrlproto: connection closed")
		}
		return frame{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()
	unregister := func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}
	for try := 0; try < attempts; try++ {
		if try > 0 {
			c.retrans.Inc()
		}
		if err := c.send(frame{typ: typ, reqID: id, trace: uint64(sc.Trace), span: uint64(sc.Span), payload: payload}); err != nil {
			unregister()
			return frame{}, err
		}
		if timeout <= 0 {
			return c.await(ch)
		}
		timer := time.NewTimer(timeout)
		select {
		case f, ok := <-ch:
			timer.Stop()
			//lint:ignore lockcheck mu was released after registering the pending channel; finish re-locks on a cold path
			return c.finish(f, ok)
		case <-timer.C:
		}
	}
	unregister()
	// A response racing the last timeout may already sit in the buffered
	// channel; prefer it over the timeout error.
	select {
	case f, ok := <-ch:
		//lint:ignore lockcheck mu was released after registering the pending channel; finish re-locks on a cold path
		return c.finish(f, ok)
	default:
	}
	return frame{}, fmt.Errorf("%w after %d attempts", ErrTimeout, attempts)
}

// await blocks for the response (or connection death) on a pending channel.
func (c *conn) await(ch chan frame) (frame, error) {
	f, ok := <-ch
	return c.finish(f, ok)
}

// finish translates a pending-channel delivery into the caller's result.
func (c *conn) finish(f frame, ok bool) (frame, error) {
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errors.New("ctrlproto: connection closed")
		}
		return frame{}, err
	}
	if f.typ == MsgError {
		return frame{}, fmt.Errorf("ctrlproto: remote error: %s", f.payload)
	}
	return f, nil
}

// respond sends a response frame for reqID and flushes it immediately.
func (c *conn) respond(reqID uint32, typ MsgType, payload []byte) error {
	return c.send(frame{typ: typ, resp: true, reqID: reqID, payload: payload})
}

func (c *conn) respondError(reqID uint32, err error) error {
	return c.respond(reqID, MsgError, []byte(err.Error()))
}

// reply enqueues a response frame without flushing. The server answers
// pipelined requests with reply and flushes once the connection goes
// idle, so a burst of n requests costs one response write, not n.
// Responses echo the request frame's span context, so a traced
// request's response flush is attributed to its trace.
func (c *conn) reply(req frame, typ MsgType, payload []byte) error {
	return c.buffer(frame{typ: typ, resp: true, reqID: req.reqID,
		trace: req.trace, span: req.span, payload: payload})
}

func (c *conn) replyError(req frame, err error) error {
	return c.reply(req, MsgError, []byte(err.Error()))
}

// readLoop dispatches incoming frames: responses to waiters, requests to
// handle. It runs until the connection dies. The loop locks the dispatch
// mutex per response and blocks in transport reads, so the annotation is
// deliberately just "no alloc": the per-frame cost to watch is heap churn.
//
// hotpath: no alloc
func (c *conn) readLoop(handle func(frame)) {
	for {
		f, err := readFrameBuf(c.br)
		if err != nil {
			//lint:ignore lockcheck the dispatch lock below is released before the next loop iteration; fail never runs under it
			c.fail(err)
			return
		}
		if f.resp {
			c.mu.Lock()
			ch, ok := c.pending[f.reqID]
			if ok {
				delete(c.pending, f.reqID)
			}
			c.mu.Unlock()
			if ok {
				ch <- f
			}
			continue
		}
		handle(f)
	}
}

// fail tears the connection down once: error paths only.
//
// hotpath: cold
func (c *conn) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.err = err
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	_ = c.raw.Close()
}

func (c *conn) Close() error {
	c.fail(errors.New("ctrlproto: closed"))
	return nil
}

func marshalJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("ctrlproto: marshal %T: %v", v, err)) // static types: cannot fail
	}
	return b
}
