package ctrlproto

import (
	"encoding/binary"
	"net"
	"sync"
)

// FrameInfo describes one control frame as it crosses a FaultyConn, enough
// for a fault schedule to target specific traffic (drop only requests, only
// path replies, every third frame of a request id, ...).
type FrameInfo struct {
	Type  MsgType
	Resp  bool
	ReqID uint32
}

// FaultAction is a fault schedule's verdict on one frame.
type FaultAction int

const (
	// FaultDeliver passes the frame through untouched.
	FaultDeliver FaultAction = iota
	// FaultDrop discards the frame.
	FaultDrop
	// FaultDuplicate delivers the frame twice back to back.
	FaultDuplicate
	// FaultHold delays the frame until the next delivered frame, so it
	// arrives after traffic that was sent later (reordering).
	FaultHold
)

// FaultyConn wraps a net.Conn and injects faults into the frames written
// through it: each complete control frame in the outgoing byte stream is
// shown to the decide callback, which may drop, duplicate, delay, or pass
// it. Bytes that do not parse as frames (mid-frame fragments are buffered
// until complete; garbage is possible only from a corrupt writer) pass
// through verbatim. Reads are untouched, so wrapping the client side of a
// connection faults the client->server direction only.
//
// The chaos harness (internal/chaos) drives decide from a seeded RNG to
// exercise the client's retransmission and the server's duplicate handling
// deterministically; the ctrlproto unit tests drive it with fixed scripts.
type FaultyConn struct {
	net.Conn
	decide func(FrameInfo) FaultAction

	mu      sync.Mutex
	pending []byte // bytes written but not yet forming a complete frame
	held    []byte // frames delayed by FaultHold, flushed after the next delivery
}

// NewFaultyConn wraps raw. decide is called once per outgoing frame, in
// order; a nil decide delivers everything.
func NewFaultyConn(raw net.Conn, decide func(FrameInfo) FaultAction) *FaultyConn {
	if decide == nil {
		decide = func(FrameInfo) FaultAction { return FaultDeliver }
	}
	return &FaultyConn{Conn: raw, decide: decide}
}

// Write buffers p, slices complete frames off the buffer, applies the fault
// schedule to each, and forwards the survivors in one underlying write. It
// always reports len(p) consumed: a dropped frame is a fault to inject, not
// an error to surface.
func (f *FaultyConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	f.pending = append(f.pending, p...)

	var out []byte
	delivered := false
	for {
		if len(f.pending) < 4 {
			break
		}
		n := binary.BigEndian.Uint32(f.pending[:4])
		if n < 6 || n > MaxFrame {
			// Not a frame boundary we understand; stop interfering and
			// flush everything (held frames first, to preserve at least
			// their relative order) so the stream is not wedged.
			out = append(out, f.held...)
			out = append(out, f.pending...)
			f.held = nil
			f.pending = nil
			f.mu.Unlock()
			return f.forward(out, len(p))
		}
		total := 4 + int(n)
		if len(f.pending) < total {
			break
		}
		frame := f.pending[:total]
		info := FrameInfo{
			Type:  MsgType(frame[4]),
			Resp:  frame[5]&flagResponse != 0,
			ReqID: binary.BigEndian.Uint32(frame[6:10]),
		}
		switch f.decide(info) {
		case FaultDrop:
		case FaultDuplicate:
			out = append(out, frame...)
			out = append(out, frame...)
			delivered = true
		case FaultHold:
			f.held = append(f.held, frame...)
		default:
			out = append(out, frame...)
			delivered = true
		}
		f.pending = f.pending[total:]
	}
	if delivered && len(f.held) > 0 {
		out = append(out, f.held...)
		f.held = nil
	}
	// Compact so the retained buffer does not alias the whole history.
	if len(f.pending) > 0 {
		f.pending = append([]byte(nil), f.pending...)
	} else {
		f.pending = nil
	}
	f.mu.Unlock()
	return f.forward(out, len(p))
}

func (f *FaultyConn) forward(out []byte, consumed int) (int, error) {
	if len(out) == 0 {
		return consumed, nil
	}
	if _, err := f.Conn.Write(out); err != nil {
		return 0, err
	}
	return consumed, nil
}

// Close drops any held frames and closes the underlying connection.
func (f *FaultyConn) Close() error {
	f.mu.Lock()
	f.held = nil
	f.pending = nil
	f.mu.Unlock()
	return f.Conn.Close()
}
