package ctrlproto

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/packet"
)

// Client is an agent's connection to the central controller. It implements
// agent.ControllerClient, so an agent is wired identically whether the
// controller is in-process or across the network.
type Client struct {
	c *conn
	// Reporter answers the controller's location queries during failover
	// recovery (§5.2). Nil clients answer with an empty report.
	Reporter func() core.AgentLocationReport

	// Timeout and Attempts configure per-request retransmission over lossy
	// transports (the chaos harness's faulty links): a request unanswered
	// within Timeout is resent with the same request id, up to Attempts
	// sends, then fails with ErrTimeout. The zero values keep the default
	// behaviour — one send that blocks until the connection dies. Set them
	// before issuing requests; they are read without synchronisation.
	Timeout  time.Duration
	Attempts int

	// OnSnapshot receives controller-pushed agent snapshots
	// (Server.PushSnapshot). It runs synchronously on the read loop, so a
	// snapshot is fully handled before any later frame on the connection —
	// that ordering is the pusher's publish barrier. Nil drops pushes. Set
	// it before issuing requests; it is read without synchronisation.
	OnSnapshot func(SnapshotNotify) error
}

// NewClient wraps an established connection and starts its read loop.
func NewClient(raw net.Conn) *Client {
	cl := &Client{c: newConn(raw)}
	go cl.c.readLoop(cl.handle)
	return cl
}

// Dial connects to a controller server.
func Dial(network, addr string) (*Client, error) {
	raw, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(raw), nil
}

// Close tears the connection down.
func (cl *Client) Close() error { return cl.c.Close() }

// request issues one correlated request under the client's retry policy.
func (cl *Client) request(typ MsgType, payload []byte) (frame, error) {
	return cl.c.requestRetry(typ, payload, cl.Timeout, cl.Attempts)
}

// requestCtx is request carrying span context: the frame ships the
// trace ids and the round trip is timed under a wire.rtt child span.
func (cl *Client) requestCtx(sc obs.SpanContext, typ MsgType, payload []byte) (frame, error) {
	return cl.c.requestCtx(sc, typ, payload, cl.Timeout, cl.Attempts)
}

// handle serves controller-initiated requests.
func (cl *Client) handle(f frame) {
	switch f.typ {
	case MsgLocationQuery:
		var rep core.AgentLocationReport
		if cl.Reporter != nil {
			rep = cl.Reporter()
		}
		_ = cl.c.respond(f.reqID, MsgLocationQuery, marshalJSON(rep))
	case MsgSnapshot:
		// A notification, not a request: no response frame. A stale or
		// invalid snapshot is the receiver's local decision (the agent
		// refuses it and keeps its LKG state); the wire carries no verdict.
		var n SnapshotNotify
		if err := json.Unmarshal(f.payload, &n); err != nil {
			return
		}
		if cl.OnSnapshot != nil {
			//lint:ignore errdrop the push has no reply channel; rejected snapshots are counted by the agent
			_ = cl.OnSnapshot(n)
		}
	default:
		_ = cl.c.respondError(f.reqID, errUnexpected(f.typ))
	}
}

type unexpectedError struct{ t MsgType }

func (e unexpectedError) Error() string { return "unexpected request " + e.t.String() }

func errUnexpected(t MsgType) error { return unexpectedError{t} }

// Hello announces the agent's base station.
func (cl *Client) Hello(bs packet.BSID) error {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, uint32(bs))
	_, err := cl.request(MsgHello, b)
	return err
}

// Echo round-trips a payload (latency probes).
func (cl *Client) Echo(payload []byte) ([]byte, error) {
	f, err := cl.request(MsgEcho, payload)
	if err != nil {
		return nil, err
	}
	return f.payload, nil
}

// ResolveLocIP implements agent.LocResolver over the wire, enabling §7
// mobile-to-mobile paths for remote agents.
func (cl *Client) ResolveLocIP(perm packet.Addr) (packet.Addr, error) {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, uint32(perm))
	f, err := cl.request(MsgResolve, b)
	if err != nil {
		return 0, err
	}
	if len(f.payload) != 4 {
		return 0, fmt.Errorf("ctrlproto: resolve reply %d bytes", len(f.payload))
	}
	return packet.Addr(binary.BigEndian.Uint32(f.payload)), nil
}

// RequestPath implements agent.ControllerClient over the wire.
func (cl *Client) RequestPath(bs packet.BSID, clause int) (packet.Tag, error) {
	return cl.RequestPathCtx(obs.SpanContext{}, bs, clause)
}

// RequestPathCtx is RequestPath with span context propagated on the
// frame, continuing the caller's trace on the far side of the wire.
func (cl *Client) RequestPathCtx(sc obs.SpanContext, bs packet.BSID, clause int) (packet.Tag, error) {
	f, err := cl.requestCtx(sc, MsgPathRequest, PathRequest{BS: bs, Clause: uint32(clause)}.marshal())
	if err != nil {
		return 0, err
	}
	rep, err := parsePathReply(f.payload)
	if err != nil {
		return 0, err
	}
	return rep.Tag, nil
}

// Attach admits a UE through the controller.
func (cl *Client) Attach(imsi string, bs packet.BSID) (core.UE, []core.Classifier, error) {
	return cl.AttachCtx(obs.SpanContext{}, imsi, bs)
}

// AttachCtx is Attach with span context propagated on the frame.
func (cl *Client) AttachCtx(sc obs.SpanContext, imsi string, bs packet.BSID) (core.UE, []core.Classifier, error) {
	f, err := cl.requestCtx(sc, MsgAttach, marshalJSON(AttachRequest{IMSI: imsi, BS: bs}))
	if err != nil {
		return core.UE{}, nil, err
	}
	var rep AttachReply
	if err := json.Unmarshal(f.payload, &rep); err != nil {
		return core.UE{}, nil, err
	}
	return rep.UE, rep.Classifiers, nil
}

// Handoff moves a UE through the controller.
func (cl *Client) Handoff(imsi string, newBS packet.BSID) (core.HandoffResult, error) {
	return cl.HandoffCtx(obs.SpanContext{}, imsi, newBS)
}

// HandoffCtx is Handoff with span context propagated on the frame.
func (cl *Client) HandoffCtx(sc obs.SpanContext, imsi string, newBS packet.BSID) (core.HandoffResult, error) {
	f, err := cl.requestCtx(sc, MsgHandoff, marshalJSON(HandoffRequest{IMSI: imsi, NewBS: newBS}))
	if err != nil {
		return core.HandoffResult{}, err
	}
	var res core.HandoffResult
	if err := json.Unmarshal(f.payload, &res); err != nil {
		return core.HandoffResult{}, err
	}
	return res, nil
}
