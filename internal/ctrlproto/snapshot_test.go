package ctrlproto

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
)

// TestPushSnapshotDeliversInOrder covers the push path: snapshots reach
// only the connection that declared the target station, arrive in send
// order, and an Echo issued after a push is answered only after the
// snapshot has been handled (the read loop serves frames in order — the
// pusher's publish barrier).
func TestPushSnapshotDeliversInOrder(t *testing.T) {
	srv := NewServer(lineController(t))
	cl := pipePair(t, srv)
	other := pipePair(t, srv)

	var mu sync.Mutex
	var got []uint64
	cl.OnSnapshot = func(n SnapshotNotify) error {
		mu.Lock()
		got = append(got, n.Version)
		mu.Unlock()
		return nil
	}
	other.OnSnapshot = func(SnapshotNotify) error {
		t.Error("snapshot delivered to an agent for a different station")
		return nil
	}
	if err := cl.Hello(3); err != nil {
		t.Fatal(err)
	}
	if err := other.Hello(4); err != nil {
		t.Fatal(err)
	}

	view := core.AgentView{BS: 3, Epoch: 1, Tags: []core.TagGrant{{Clause: 5, Tag: 2}}}
	for v := uint64(1); v <= 3; v++ {
		n, err := srv.PushSnapshot(SnapshotNotify{Version: v, View: view})
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("push v%d reached %d conns, want 1", v, n)
		}
	}
	// Barrier: the echo response cannot overtake the pushes on the wire.
	if _, err := cl.Echo(nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("delivered versions = %v, want [1 2 3]", got)
	}
}

// TestPushSnapshotNoAgent: pushing at a station with no connected agent is
// a dropped notification, not an error — the agent rides its LKG state.
func TestPushSnapshotNoAgent(t *testing.T) {
	srv := NewServer(lineController(t))
	cl := pipePair(t, srv)
	if err := cl.Hello(1); err != nil {
		t.Fatal(err)
	}
	n, err := srv.PushSnapshot(SnapshotNotify{Version: 1,
		View: core.AgentView{BS: packet.BSID(99)}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("pushed to %d conns, want 0", n)
	}
	// A client with no OnSnapshot handler just drops pushes; the
	// connection stays healthy.
	if _, err := srv.PushSnapshot(SnapshotNotify{Version: 1,
		View: core.AgentView{BS: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Echo([]byte("alive")); err != nil {
		t.Fatal(err)
	}
}
