package ctrlproto

import (
	"repro/internal/obs"
)

// Instrument registers the server's wire telemetry on reg: frames read,
// path requests served, in-flight request depth, and group-commit flush
// sizes. Call before Serve/ServeConn. The wire layer deliberately emits
// no trace events — its worker-pool and retransmission timing are
// scheduler-dependent, and trace dumps must stay deterministic in
// same-seed harness runs; counters and histograms are exempt from that
// guarantee. Spans are sampled and causally anchored (a frame's span
// context decides what gets recorded, not the scheduler), so the wire
// does carry wire.serve handler sections and wire.flush write sections
// for traced requests.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.obsFrames = reg.Counter("wire.frames.in")
	reg.Doc("wire.frames.in", "Control-channel frames read, all connections")
	s.obsRequests = reg.Counter("wire.requests.path")
	s.obsInflight = reg.Gauge("wire.inflight")
	s.obsFlush = reg.Histogram("wire.flush.frames", 1, 2, 4, 8, 16, 32, 64)
	reg.Doc("wire.flush.frames", "Frames carried per group-commit flush write")
	s.obsServe = reg.SpanName("wire.serve")
	s.obsFlushSpan = reg.SpanName("wire.flush")
}

// Instrument registers the client's wire telemetry on reg: the number of
// same-reqID retransmissions its retry policy has sent (a lossy-wire
// health signal). Get-or-create registration makes re-instrumenting a
// reconnected client a no-op.
func (cl *Client) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	cl.c.retrans = reg.Counter("wire.retransmits")
	reg.Doc("wire.retransmits", "Same-reqID retransmissions sent by the retry policy")
	cl.c.rttSpan = reg.SpanName("wire.rtt")
}
