package ctrlproto

import (
	"repro/internal/obs"
)

// Instrument registers the server's wire telemetry on reg: frames read,
// path requests served, in-flight request depth, and group-commit flush
// sizes. Call before Serve/ServeConn. The wire layer deliberately emits
// no trace events — its worker-pool and retransmission timing are
// scheduler-dependent, and trace dumps must stay deterministic in
// same-seed harness runs; counters and histograms are exempt from that
// guarantee.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.obsFrames = reg.Counter("wire.frames.in")
	s.obsRequests = reg.Counter("wire.requests.path")
	s.obsInflight = reg.Gauge("wire.inflight")
	s.obsFlush = reg.Histogram("wire.flush.frames", 1, 2, 4, 8, 16, 32, 64)
}

// Instrument registers the client's wire telemetry on reg: the number of
// same-reqID retransmissions its retry policy has sent (a lossy-wire
// health signal). Get-or-create registration makes re-instrumenting a
// reconnected client a no-op.
func (cl *Client) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	cl.c.retrans = reg.Counter("wire.retransmits")
}
