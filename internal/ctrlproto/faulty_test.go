package ctrlproto

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/policy"
)

// sinkConn is a net.Conn that records writes; reads block forever.
type sinkConn struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *sinkConn) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}
func (s *sinkConn) bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf.Bytes()...)
}
func (s *sinkConn) Read(p []byte) (int, error)         { select {} }
func (s *sinkConn) Close() error                       { return nil }
func (s *sinkConn) LocalAddr() net.Addr                { return nil }
func (s *sinkConn) RemoteAddr() net.Addr               { return nil }
func (s *sinkConn) SetDeadline(t time.Time) error      { return nil }
func (s *sinkConn) SetReadDeadline(t time.Time) error  { return nil }
func (s *sinkConn) SetWriteDeadline(t time.Time) error { return nil }

func mustFrame(t *testing.T, f frame) []byte {
	t.Helper()
	b, err := appendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFaultyConnMechanics drives the wrapper byte-for-byte: drop, duplicate,
// hold-then-release, and fragmented writes, asserting the exact stream the
// peer observes.
func TestFaultyConnMechanics(t *testing.T) {
	f1 := mustFrame(t, frame{typ: MsgEcho, reqID: 1, payload: []byte("one")})
	f2 := mustFrame(t, frame{typ: MsgEcho, reqID: 2, payload: []byte("two")})
	f3 := mustFrame(t, frame{typ: MsgEcho, reqID: 3, payload: []byte("three")})

	script := map[uint32]FaultAction{1: FaultHold, 2: FaultDrop, 3: FaultDuplicate}
	var infos []FrameInfo
	sink := &sinkConn{}
	fc := NewFaultyConn(sink, func(i FrameInfo) FaultAction {
		infos = append(infos, i)
		return script[i.ReqID]
	})

	// Fragmented write: frame 1 split mid-header, then the rest plus 2 and 3.
	if _, err := fc.Write(f1[:3]); err != nil {
		t.Fatal(err)
	}
	if got := sink.bytes(); len(got) != 0 {
		t.Fatalf("partial frame leaked %d bytes", len(got))
	}
	rest := append(append(append([]byte(nil), f1[3:]...), f2...), f3...)
	if n, err := fc.Write(rest); err != nil || n != len(rest) {
		t.Fatalf("write = %d %v", n, err)
	}

	// Frame 2 dropped; frame 3 delivered twice; held frame 1 released after.
	want := append(append(append([]byte(nil), f3...), f3...), f1...)
	if got := sink.bytes(); !bytes.Equal(got, want) {
		t.Fatalf("stream = %x\nwant %x", got, want)
	}
	if len(infos) != 3 || infos[0].ReqID != 1 || infos[2].ReqID != 3 || infos[0].Type != MsgEcho || infos[0].Resp {
		t.Fatalf("decide saw %+v", infos)
	}
}

// TestFaultyConnPassthroughGarbage: bytes that do not frame must flow
// through rather than wedge the stream.
func TestFaultyConnPassthroughGarbage(t *testing.T) {
	sink := &sinkConn{}
	fc := NewFaultyConn(sink, func(FrameInfo) FaultAction { return FaultDrop })
	junk := []byte{0, 0, 0, 1, 'x'} // length 1 < minimum 6
	if _, err := fc.Write(junk); err != nil {
		t.Fatal(err)
	}
	if got := sink.bytes(); !bytes.Equal(got, junk) {
		t.Fatalf("garbage rewritten: %x", got)
	}
}

// faultyPair wires a client to a server through a FaultyConn on the
// client->server direction.
func faultyPair(t *testing.T, srv *Server, decide func(FrameInfo) FaultAction) *Client {
	t.Helper()
	a, b := net.Pipe()
	go srv.ServeConn(a)
	cl := NewClient(NewFaultyConn(b, decide))
	t.Cleanup(func() { _ = cl.Close() })
	return cl
}

// TestFaultyDropTriggersRetry: the first transmission of each request is
// dropped; the client's retransmission (same request id) must complete it.
func TestFaultyDropTriggersRetry(t *testing.T) {
	srv := NewServer(lineController(t))
	sends := make(map[uint32]int)
	var mu sync.Mutex
	cl := faultyPair(t, srv, func(i FrameInfo) FaultAction {
		mu.Lock()
		defer mu.Unlock()
		sends[i.ReqID]++
		if sends[i.ReqID] == 1 {
			return FaultDrop
		}
		return FaultDeliver
	})
	cl.Timeout = 20 * time.Millisecond
	cl.Attempts = 10

	got, err := cl.Echo([]byte("lossy"))
	if err != nil || string(got) != "lossy" {
		t.Fatalf("echo over lossy link = %q %v", got, err)
	}
	mu.Lock()
	defer mu.Unlock()
	for id, n := range sends {
		if n < 2 {
			t.Fatalf("request %d sent %d times; the retry never fired", id, n)
		}
	}
}

// TestFaultyDuplicateIsCorrelatedAway: a duplicated request is processed
// twice by the server, but the client sees exactly one reply (the late
// duplicate's response targets an already-completed request id and is
// discarded by the read loop).
func TestFaultyDuplicateIsCorrelatedAway(t *testing.T) {
	ctrl := lineController(t)
	srv := NewServer(ctrl)
	cl := faultyPair(t, srv, func(i FrameInfo) FaultAction {
		if i.Type == MsgPathRequest {
			return FaultDuplicate
		}
		return FaultDeliver
	})
	_ = ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _, err := cl.Attach("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	clause, _ := ctrl.Policy.Match(ue.Attr, policy.AppWeb)
	tag, err := cl.RequestPath(0, clause)
	if err != nil || tag == 0 {
		t.Fatalf("path over duplicating link = %d %v", tag, err)
	}
	// Both copies reached the handler; memoisation makes them agree.
	waitFor(t, func() bool { return atomic.LoadUint64(&srv.Requests) == 2 })
	// The connection is still usable: the duplicate reply did not desync it.
	if _, err := cl.Echo([]byte("after")); err != nil {
		t.Fatal(err)
	}
}

// TestFaultyReorderKeepsCorrelation: two concurrent requests with the first
// frame held until the second passes; each caller still gets its own answer.
func TestFaultyReorderKeepsCorrelation(t *testing.T) {
	srv := NewServer(lineController(t))
	var mu sync.Mutex
	held := false
	cl := faultyPair(t, srv, func(i FrameInfo) FaultAction {
		mu.Lock()
		defer mu.Unlock()
		if !held {
			held = true
			return FaultHold
		}
		return FaultDeliver
	})

	var wg sync.WaitGroup
	payloads := []string{"first", "second"}
	errs := make([]error, len(payloads))
	for i, p := range payloads {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			got, err := cl.Echo([]byte(p))
			if err == nil && string(got) != p {
				err = errors.New("echo answered with " + string(got))
			}
			errs[i] = err
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("echo %q: %v", payloads[i], err)
		}
	}
}

// TestFaultyRetriesExhausted: a link that drops everything must surface
// ErrTimeout, not hang.
func TestFaultyRetriesExhausted(t *testing.T) {
	srv := NewServer(lineController(t))
	cl := faultyPair(t, srv, func(FrameInfo) FaultAction { return FaultDrop })
	cl.Timeout = 5 * time.Millisecond
	cl.Attempts = 3
	_, err := cl.Echo([]byte("void"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// A clean link after the fault clears: same client keeps working once
	// frames flow again (the request id space was not corrupted).
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
