package ctrlproto

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/topo"
)

func TestFrameRoundTrip(t *testing.T) {
	f := func(typ uint8, resp bool, reqID uint32, payload []byte) bool {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		var buf bytes.Buffer
		in := frame{typ: MsgType(typ), resp: resp, reqID: reqID, payload: payload}
		if err := writeFrame(&buf, in); err != nil {
			return false
		}
		out, err := readFrame(&buf)
		if err != nil {
			return false
		}
		return out.typ == in.typ && out.resp == in.resp && out.reqID == in.reqID &&
			bytes.Equal(out.payload, in.payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRejectsBadLength(t *testing.T) {
	// Length below the header minimum.
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 2, 0, 0})); err == nil {
		t.Fatal("short frame accepted")
	}
	// Length above the cap.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := readFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Truncated stream.
	var buf bytes.Buffer
	_ = writeFrame(&buf, frame{typ: MsgEcho, payload: []byte("abc")})
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := readFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestPathMessagesRoundTrip(t *testing.T) {
	req := PathRequest{BS: 77, Clause: 5}
	got, err := parsePathRequest(req.marshal())
	if err != nil || got != req {
		t.Fatalf("request: %+v %v", got, err)
	}
	rep := PathReply{Tag: 1234}
	gotR, err := parsePathReply(rep.marshal())
	if err != nil || gotR != rep {
		t.Fatalf("reply: %+v %v", gotR, err)
	}
	if _, err := parsePathRequest([]byte{1}); err == nil {
		t.Fatal("short request accepted")
	}
	if _, err := parsePathReply([]byte{1}); err == nil {
		t.Fatal("short reply accepted")
	}
}

// lineController builds a minimal controller for protocol tests.
func lineController(t *testing.T) *core.Controller {
	t.Helper()
	tp := topo.New()
	gw := tp.AddNode(topo.Gateway, "gw")
	c1 := tp.AddNode(topo.Core, "c1")
	as := tp.AddNode(topo.Access, "as")
	_ = tp.Connect(gw, c1)
	_ = tp.Connect(c1, as)
	_ = tp.AddBaseStation(0, as)
	if _, err := tp.AttachMiddlebox(0, c1); err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewController(tp, core.ControllerConfig{
		Gateway: gw,
		Policy:  policy.ExampleCarrierPolicy(),
		MBTypes: map[string]topo.MBType{
			policy.MBFirewall: 0, policy.MBTranscoder: 0, policy.MBEchoCancel: 0,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// pipePair wires a client to a server over net.Pipe.
func pipePair(t *testing.T, srv *Server) *Client {
	t.Helper()
	a, b := net.Pipe()
	go srv.ServeConn(a)
	cl := NewClient(b)
	t.Cleanup(func() { _ = cl.Close() })
	return cl
}

func TestClientServerPathRequest(t *testing.T) {
	ctrl := lineController(t)
	srv := NewServer(ctrl)
	cl := pipePair(t, srv)

	if err := cl.Hello(0); err != nil {
		t.Fatal(err)
	}
	_ = ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, cls, err := cl.Attach("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ue.IMSI != "a" || ue.LocIP == 0 || len(cls) == 0 {
		t.Fatalf("attach reply: %+v cls=%d", ue, len(cls))
	}
	clause, _ := ctrl.Policy.Match(ue.Attr, policy.AppWeb)
	tag, err := cl.RequestPath(0, clause)
	if err != nil {
		t.Fatal(err)
	}
	if tag == 0 {
		t.Fatal("no tag")
	}
	tag2, err := cl.RequestPath(0, clause)
	if err != nil || tag2 != tag {
		t.Fatalf("repeat request: %d %v", tag2, err)
	}
	if srv.Requests != 2 {
		t.Fatalf("server requests = %d", srv.Requests)
	}
}

func TestClientServerErrors(t *testing.T) {
	ctrl := lineController(t)
	srv := NewServer(ctrl)
	cl := pipePair(t, srv)
	if _, err := cl.RequestPath(0, 999); err == nil {
		t.Fatal("unknown clause should propagate an error")
	}
	if _, _, err := cl.Attach("ghost", 0); err == nil {
		t.Fatal("unknown subscriber should propagate")
	}
	// The connection survives errors.
	if _, err := cl.Echo([]byte("still alive")); err != nil {
		t.Fatal(err)
	}
}

func TestEcho(t *testing.T) {
	srv := NewServer(lineController(t))
	cl := pipePair(t, srv)
	got, err := cl.Echo([]byte("ping"))
	if err != nil || string(got) != "ping" {
		t.Fatalf("echo = %q %v", got, err)
	}
}

func TestHandoffOverWire(t *testing.T) {
	// Two-station line so a handoff is possible.
	tp := topo.New()
	gw := tp.AddNode(topo.Gateway, "gw")
	c1 := tp.AddNode(topo.Core, "c1")
	as0 := tp.AddNode(topo.Access, "as0")
	as1 := tp.AddNode(topo.Access, "as1")
	_ = tp.Connect(gw, c1)
	_ = tp.Connect(c1, as0)
	_ = tp.Connect(c1, as1)
	_ = tp.AddBaseStation(0, as0)
	_ = tp.AddBaseStation(1, as1)
	_, _ = tp.AttachMiddlebox(0, c1)
	ctrl, err := core.NewController(tp, core.ControllerConfig{
		Gateway: gw, Policy: policy.ExampleCarrierPolicy(),
		MBTypes: map[string]topo.MBType{policy.MBFirewall: 0, policy.MBTranscoder: 0, policy.MBEchoCancel: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctrl)
	cl := pipePair(t, srv)
	_ = ctrl.RegisterSubscriber("m", policy.Attributes{Provider: "A"})
	if _, _, err := cl.Attach("m", 0); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Handoff("m", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.UE.BS != 1 || res.OldBS != 0 {
		t.Fatalf("handoff result: %+v", res)
	}
}

func TestLocationQueryRecovery(t *testing.T) {
	ctrl := lineController(t)
	srv := NewServer(ctrl)
	cl := pipePair(t, srv)
	_ = ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _, err := cl.Attach("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	cl.Reporter = func() core.AgentLocationReport {
		return core.AgentLocationReport{BS: 0, UEs: []core.UE{ue}}
	}
	// Failover wipes and recovers via the wire.
	if _, err := ctrl.Store.Failover(); err != nil {
		t.Fatal(err)
	}
	n, err := srv.QueryLocations()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("agents answered = %d", n)
	}
	got, ok := ctrl.LookupUE("a")
	if !ok || got.LocIP != ue.LocIP {
		t.Fatalf("recovered UE = %+v %v", got, ok)
	}
}

func TestConcurrentClients(t *testing.T) {
	ctrl := lineController(t)
	srv := NewServer(ctrl)
	_ = ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _, _ := ctrl.Attach("a", 0)
	clause, _ := ctrl.Policy.Match(ue.Attr, policy.AppWeb)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		cl := pipePair(t, srv)
		wg.Add(1)
		go func(cl *Client) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := cl.RequestPath(0, clause); err != nil {
					t.Errorf("request: %v", err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	if srv.Requests != 200 {
		t.Fatalf("requests = %d, want 200", srv.Requests)
	}
}

func TestTCPTransport(t *testing.T) {
	ctrl := lineController(t)
	srv := NewServer(ctrl)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer ln.Close()

	cl, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Hello(0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Echo([]byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	_ = ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _, err := cl.Attach("a", 0)
	if err != nil || ue.LocIP == 0 {
		t.Fatalf("attach over tcp: %+v %v", ue, err)
	}
	_ = packet.BSID(0)
}

func TestClosedConnectionFailsRequests(t *testing.T) {
	srv := NewServer(lineController(t))
	cl := pipePair(t, srv)
	_ = cl.Close()
	if _, err := cl.Echo([]byte("x")); err == nil {
		t.Fatal("request on closed connection should fail")
	}
}

func TestResolveLocIPOverWire(t *testing.T) {
	ctrl := lineController(t)
	srv := NewServer(ctrl)
	cl := pipePair(t, srv)
	_ = ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	ue, _, err := cl.Attach("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := cl.ResolveLocIP(ue.PermIP)
	if err != nil {
		t.Fatal(err)
	}
	if loc != ue.LocIP {
		t.Fatalf("resolved %s, want %s", loc, ue.LocIP)
	}
	if _, err := cl.ResolveLocIP(packet.AddrFrom4(9, 9, 9, 9)); err == nil {
		t.Fatal("unknown permanent IP should fail")
	}
}
