package ctrlproto

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/packet"
)

// ControlPlane is the slice of controller behaviour the wire protocol
// needs. Both a bare *core.Controller and a sharded shard.Dispatcher
// satisfy it, so one server fronts either deployment shape.
type ControlPlane interface {
	Attach(imsi string, bs packet.BSID) (core.UE, []core.Classifier, error)
	Handoff(imsi string, newBS packet.BSID) (core.HandoffResult, error)
	RequestPath(bs packet.BSID, clause int) (packet.Tag, error)
	ResolveLocIP(perm packet.Addr) (packet.Addr, error)
	RecoverLocations(reports []core.AgentLocationReport) error
}

// TracedControlPlane is the optional span-aware extension of
// ControlPlane. The server type-asserts it and forwards the span
// context decoded from traced frames, so a trace rooted on the agent
// side of the wire continues through dispatcher and controller layers.
// Control planes without it still work — remote traces just end at the
// wire.serve span.
type TracedControlPlane interface {
	AttachCtx(sc obs.SpanContext, imsi string, bs packet.BSID) (core.UE, []core.Classifier, error)
	HandoffCtx(sc obs.SpanContext, imsi string, newBS packet.BSID) (core.HandoffResult, error)
	RequestPathCtx(sc obs.SpanContext, bs packet.BSID, clause int) (packet.Tag, error)
}

// Server exposes a ControlPlane over the control channel. One goroutine
// pool per connection bounds concurrent request handling, mirroring the
// worker-thread dimension of the paper's Cbench experiment.
type Server struct {
	Ctrl ControlPlane
	// Workers bounds concurrently handled requests per connection
	// (default 8).
	Workers int

	mu    sync.Mutex
	conns map[*conn]packet.BSID // hello-declared base station
	ln    net.Listener
	wg    sync.WaitGroup

	// Requests counts path requests served (all connections).
	Requests uint64

	// Wire telemetry handles (nil-safe no-ops); set by Instrument.
	obsFrames    *obs.Counter
	obsRequests  *obs.Counter
	obsInflight  *obs.Gauge
	obsFlush     *obs.Histogram
	obsServe     *obs.SpanName
	obsFlushSpan *obs.SpanName
}

// NewServer wraps a control plane (a controller or a shard dispatcher).
func NewServer(ctrl ControlPlane) *Server {
	return &Server{Ctrl: ctrl, Workers: 8, conns: make(map[*conn]packet.BSID)}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		raw, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			//lint:ignore lockcheck Serve's registration lock is released before the accept loop; serveConn runs on its own goroutine
			s.serveConn(raw)
		}()
	}
}

// ServeConn handles a single pre-established connection (tests and
// in-process benches use net.Pipe).
func (s *Server) ServeConn(raw net.Conn) {
	s.serveConn(raw)
}

func (s *Server) serveConn(raw net.Conn) {
	c := newConn(raw)
	c.flushFrames = s.obsFlush
	c.flushSpan = s.obsFlushSpan
	s.mu.Lock()
	s.conns[c] = 0
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		_ = c.Close()
	}()

	workers := s.Workers
	if workers <= 0 {
		workers = 8
	}
	// A fixed pool of workers drains a buffered per-connection frame queue.
	// Compared to spawning a goroutine per frame, the pool costs nothing to
	// keep warm, and the queue lets pipelined clients run ahead of the
	// handlers — each scheduler pass moves a batch of frames instead of one.
	//
	// Replies are buffered, not written: inflight tracks frames read but not
	// yet handled, and whichever worker drives it to zero flushes the whole
	// accumulated batch in one Write. A client pipelining n requests pays one
	// response rendezvous per burst instead of n — that amortisation is what
	// makes deeper pipelines faster, not merely no slower.
	var inflight atomic.Int64
	frames := make(chan frame, 16*workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for f := range frames {
				//lint:ignore lockcheck the registration lock is released before the workers start; handle locks on its own goroutine
				s.handle(c, f)
				s.obsInflight.Add(-1)
				if inflight.Add(-1) == 0 {
					_ = c.flush()
				}
			}
		}()
	}
	c.readLoop(func(f frame) {
		s.obsFrames.Inc()
		s.obsInflight.Add(1)
		inflight.Add(1)
		frames <- f
	})
	close(frames)
	wg.Wait()
}

func (s *Server) handle(c *conn, f frame) {
	// Continue the frame's trace: handler work nests under a wire.serve
	// span, and replies echo the context so the response flush is
	// attributed too. A frame from an untraced client makes the server
	// the entry point, so wire.serve takes its own sampling decision
	// there — a daemon serving only plain clients still populates
	// /debug/spans. The steady state (unsampled either way) sees only
	// the zero-span no-op branches.
	sc := obs.SpanContext{Trace: obs.TraceID(f.trace), Span: obs.SpanID(f.span)}
	var sp obs.Span
	if sc.Sampled() {
		sp = s.obsServe.Start(sc)
	} else {
		sp = s.obsServe.Root()
	}
	defer sp.End()
	if sp.Context().Sampled() {
		sc = sp.Context()
	}
	switch f.typ {
	case MsgHello:
		if len(f.payload) == 4 {
			bs := packet.BSID(uint32(f.payload[0])<<24 | uint32(f.payload[1])<<16 |
				uint32(f.payload[2])<<8 | uint32(f.payload[3]))
			s.mu.Lock()
			s.conns[c] = bs
			s.mu.Unlock()
		}
		_ = c.reply(f, MsgHello, nil)
	case MsgEcho:
		_ = c.reply(f, MsgEcho, f.payload)
	case MsgResolve:
		if len(f.payload) != 4 {
			_ = c.replyError(f, fmt.Errorf("resolve payload %d bytes", len(f.payload)))
			return
		}
		perm := packet.Addr(uint32(f.payload[0])<<24 | uint32(f.payload[1])<<16 |
			uint32(f.payload[2])<<8 | uint32(f.payload[3]))
		loc, err := s.Ctrl.ResolveLocIP(perm)
		if err != nil {
			_ = c.replyError(f, err)
			return
		}
		b := make([]byte, 4)
		b[0], b[1], b[2], b[3] = byte(loc>>24), byte(loc>>16), byte(loc>>8), byte(loc)
		_ = c.reply(f, MsgResolve, b)
	case MsgPathRequest:
		req, err := parsePathRequest(f.payload)
		if err != nil {
			_ = c.replyError(f, err)
			return
		}
		var tag packet.Tag
		if t, ok := s.Ctrl.(TracedControlPlane); ok {
			tag, err = t.RequestPathCtx(sc, req.BS, int(req.Clause))
		} else {
			tag, err = s.Ctrl.RequestPath(req.BS, int(req.Clause))
		}
		if err != nil {
			_ = c.replyError(f, err)
			return
		}
		atomic.AddUint64(&s.Requests, 1)
		s.obsRequests.Inc()
		_ = c.reply(f, MsgPathRequest, PathReply{Tag: tag}.marshal())
	case MsgAttach:
		var req AttachRequest
		if err := json.Unmarshal(f.payload, &req); err != nil {
			_ = c.replyError(f, err)
			return
		}
		var (
			ue  core.UE
			cls []core.Classifier
			err error
		)
		if t, ok := s.Ctrl.(TracedControlPlane); ok {
			ue, cls, err = t.AttachCtx(sc, req.IMSI, req.BS)
		} else {
			ue, cls, err = s.Ctrl.Attach(req.IMSI, req.BS)
		}
		if err != nil {
			_ = c.replyError(f, err)
			return
		}
		_ = c.reply(f, MsgAttach, marshalJSON(AttachReply{UE: ue, Classifiers: cls}))
	case MsgHandoff:
		var req HandoffRequest
		if err := json.Unmarshal(f.payload, &req); err != nil {
			_ = c.replyError(f, err)
			return
		}
		var (
			res core.HandoffResult
			err error
		)
		if t, ok := s.Ctrl.(TracedControlPlane); ok {
			res, err = t.HandoffCtx(sc, req.IMSI, req.NewBS)
		} else {
			res, err = s.Ctrl.Handoff(req.IMSI, req.NewBS)
		}
		if err != nil {
			_ = c.replyError(f, err)
			return
		}
		_ = c.reply(f, MsgHandoff, marshalJSON(res))
	default:
		_ = c.replyError(f, fmt.Errorf("unknown message type %s", f.typ))
	}
}

// PushSnapshot sends one station's versioned snapshot to every connected
// agent that declared that base station in its Hello, reusing the
// group-commit write path (buffer, then one flush per connection). It
// reports how many connections the push was written to; zero with a nil
// error means no agent for that station is connected — the push is simply
// dropped, and the agent keeps serving its last-known-good state until it
// reconnects and a fresh snapshot reaches it.
func (s *Server) PushSnapshot(n SnapshotNotify) (int, error) {
	s.mu.Lock()
	conns := make([]*conn, 0, 1)
	for c, bs := range s.conns {
		if bs == n.View.BS {
			conns = append(conns, c)
		}
	}
	s.mu.Unlock()
	payload := marshalJSON(n)
	pushed := 0
	var firstErr error
	for _, c := range conns {
		if err := c.send(frame{typ: MsgSnapshot, payload: payload}); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		pushed++
	}
	return pushed, firstErr
}

// QueryLocations asks every connected agent for its location report and
// feeds the answers to the controller's recovery (§5.2). It returns the
// number of agents that answered.
func (s *Server) QueryLocations() (int, error) {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var reports []core.AgentLocationReport
	answered := 0
	for _, c := range conns {
		f, err := c.request(MsgLocationQuery, nil)
		if err != nil {
			continue // dead agents are skipped; their UEs re-attach later
		}
		var rep core.AgentLocationReport
		if err := json.Unmarshal(f.payload, &rep); err != nil {
			continue
		}
		reports = append(reports, rep)
		answered++
	}
	if err := s.Ctrl.RecoverLocations(reports); err != nil {
		return answered, err
	}
	return answered, nil
}
