package ctrlproto

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/packet"

	"repro/internal/core"
	"repro/internal/policy"
)

// tracedPlane wraps a controller and records the span context the
// server hands it, standing in for the span-aware shard dispatcher.
type tracedPlane struct {
	*core.Controller
	gotPath    obs.SpanContext
	gotHandoff obs.SpanContext
	gotAttach  obs.SpanContext
}

func (p *tracedPlane) RequestPathCtx(sc obs.SpanContext, bs packet.BSID, clause int) (packet.Tag, error) {
	p.gotPath = sc
	return p.Controller.RequestPath(bs, clause)
}

func (p *tracedPlane) HandoffCtx(sc obs.SpanContext, imsi string, newBS packet.BSID) (core.HandoffResult, error) {
	p.gotHandoff = sc
	return p.Controller.Handoff(imsi, newBS)
}

func (p *tracedPlane) AttachCtx(sc obs.SpanContext, imsi string, bs packet.BSID) (core.UE, []core.Classifier, error) {
	p.gotAttach = sc
	return p.Controller.Attach(imsi, bs)
}

// TestSpanContextOverWire proves end-to-end propagation: a trace rooted
// on the client side rides the frame's span-context header, the server
// opens a wire.serve child under it and forwards the context to a
// TracedControlPlane, and the registry ends up holding the client rtt
// span, the serve span and at least one flush span — all on one trace.
func TestSpanContextOverWire(t *testing.T) {
	reg := obs.New()
	reg.SetSpanSampling(1)
	root := reg.SpanName("test.wire.op")

	ctrl := lineController(t)
	plane := &tracedPlane{Controller: ctrl}
	srv := NewServer(plane)
	srv.Instrument(reg)
	cl := pipePair(t, srv)
	cl.Instrument(reg)

	_ = ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	sp := root.Root()
	if !sp.Context().Sampled() {
		t.Fatal("sampling 1 must trace the first op")
	}
	ue, _, err := cl.AttachCtx(sp.Context(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	clause, _ := ctrl.Policy.Match(ue.Attr, policy.AppWeb)
	if _, err := cl.RequestPathCtx(sp.Context(), 0, clause); err != nil {
		t.Fatal(err)
	}
	sp.End()

	want := sp.Context().Trace
	if plane.gotAttach.Trace != want || plane.gotPath.Trace != want {
		t.Fatalf("control plane saw traces attach=%d path=%d, want %d",
			plane.gotAttach.Trace, plane.gotPath.Trace, want)
	}
	// The forwarded context is the serve span, not the raw client span:
	// controller child spans must nest under the wire.serve section.
	if plane.gotPath.Span == sp.Context().Span {
		t.Fatal("server forwarded the client span, not its serve span")
	}

	byName := map[string]int{}
	for _, rec := range reg.SpanRecords() {
		if rec.Trace == want {
			byName[rec.Name]++
		}
	}
	if byName["wire.rtt"] != 2 || byName["wire.serve"] != 2 {
		t.Fatalf("span tree missing wire sections: %v", byName)
	}
	if byName["wire.flush"] == 0 {
		t.Fatalf("no flush span recorded: %v", byName)
	}
	if byName["test.wire.op"] != 1 {
		t.Fatalf("root span missing: %v", byName)
	}
}

// TestUntracedRequestsCarryNoContext pins the steady state: without a
// sampled root, frames stay untraced and the control plane sees the
// zero context.
func TestUntracedRequestsCarryNoContext(t *testing.T) {
	reg := obs.New()
	reg.SetSpanSampling(0)
	ctrl := lineController(t)
	plane := &tracedPlane{Controller: ctrl}
	srv := NewServer(plane)
	srv.Instrument(reg)
	cl := pipePair(t, srv)
	cl.Instrument(reg)

	_ = ctrl.RegisterSubscriber("a", policy.Attributes{Provider: "A"})
	if _, _, err := cl.Attach("a", 0); err != nil {
		t.Fatal(err)
	}
	if plane.gotAttach.Sampled() {
		t.Fatalf("untraced request delivered context %+v", plane.gotAttach)
	}
	if n := reg.SpanCount(); n != 0 {
		t.Fatalf("%d spans recorded with tracing disabled", n)
	}
}
