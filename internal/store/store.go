// Package store implements SoftCell's replicated control state (§5.2): a
// versioned key-value store kept strongly consistent across a primary and
// its replicas. The slow-changing controller state (service policy,
// subscriber attributes, policy paths) is written through the store; UE
// locations are stored too but can always be rebuilt by querying local
// agents after a failover, which the controller layer exercises.
package store

import (
	"fmt"
	"sort"
	"sync"
)

// Entry is one versioned value.
type Entry struct {
	Value   []byte
	Version uint64 // global commit sequence number of the last write
}

// Replica is a full copy of the store state. The zero value is unusable;
// use NewReplica.
type Replica struct {
	name string

	mu      sync.RWMutex
	data    map[string]Entry // guarded by mu
	applied uint64           // guarded by mu; last commit sequence applied
}

// NewReplica creates an empty replica.
func NewReplica(name string) *Replica {
	return &Replica{name: name, data: make(map[string]Entry)}
}

// Name identifies the replica.
func (r *Replica) Name() string { return r.name }

// Get reads a key.
func (r *Replica) Get(key string) (Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.data[key]
	return e, ok
}

// Applied reports the last commit sequence this replica has applied.
func (r *Replica) Applied() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.applied
}

// Keys returns all keys with the given prefix, sorted.
func (r *Replica) Keys(prefix string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for k := range r.data {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// apply installs one committed write. The value is owned by the commit:
// the coordinator copies the caller's bytes once and every replica stores
// that same immutable slice, so a fleet-wide write costs one allocation,
// not one per replica. Entries are never mutated in place (a new version
// is a new commit), which is what makes the sharing safe — the same
// property snapshot/load already relied on.
func (r *Replica) apply(seq uint64, key string, value []byte, del bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq != r.applied+1 {
		return fmt.Errorf("store: replica %s at seq %d cannot apply %d", r.name, r.applied, seq)
	}
	if del {
		delete(r.data, key)
	} else {
		r.data[key] = Entry{Value: value, Version: seq}
	}
	r.applied = seq
	return nil
}

// snapshot copies the full state (for catch-up).
func (r *Replica) snapshot() (map[string]Entry, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cp := make(map[string]Entry, len(r.data))
	for k, v := range r.data {
		cp[k] = v
	}
	return cp, r.applied
}

// load replaces the replica state with a snapshot.
func (r *Replica) load(data map[string]Entry, applied uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.data = make(map[string]Entry, len(data))
	for k, v := range data {
		r.data[k] = v
	}
	r.applied = applied
}

// Store is the replication coordinator: writes commit on the primary and
// apply synchronously to every live replica before Put returns — the strong
// consistency the paper argues is affordable because this state changes
// slowly.
type Store struct {
	mu       sync.Mutex
	primary  *Replica   // guarded by mu
	replicas []*Replica // guarded by mu
	seq      uint64     // guarded by mu
}

// New creates a store with a primary and n additional replicas.
func New(nReplicas int) *Store {
	replicas := make([]*Replica, 0, nReplicas)
	for i := 0; i < nReplicas; i++ {
		replicas = append(replicas, NewReplica(fmt.Sprintf("replica%d", i)))
	}
	return &Store{primary: NewReplica("primary"), replicas: replicas}
}

// Primary exposes the current primary replica (for reads).
func (s *Store) Primary() *Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.primary
}

// Replicas lists the non-primary replicas.
func (s *Store) Replicas() []*Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Replica(nil), s.replicas...)
}

// Put writes key=value through the primary to every replica.
func (s *Store) Put(key string, value []byte) (uint64, error) {
	return s.commit(key, value, false)
}

// Delete removes a key everywhere.
func (s *Store) Delete(key string) (uint64, error) {
	return s.commit(key, nil, true)
}

func (s *Store) commit(key string, value []byte, del bool) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	// One defensive copy per commit, shared by the primary and every
	// replica (see Replica.apply). Callers routinely pass a reused
	// encoding buffer, so the copy itself is mandatory.
	var cp []byte
	if !del {
		cp = append([]byte(nil), value...)
	}
	if err := s.primary.apply(s.seq, key, cp, del); err != nil {
		s.seq--
		return 0, err
	}
	for _, r := range s.replicas {
		if err := r.apply(s.seq, key, cp, del); err != nil {
			// A replica that cannot apply is out of sync: resynchronise it
			// from the primary rather than failing the write.
			snap, applied := s.primary.snapshot()
			r.load(snap, applied)
		}
	}
	return s.seq, nil
}

// Get reads from the primary.
func (s *Store) Get(key string) (Entry, bool) {
	return s.Primary().Get(key)
}

// Keys lists keys by prefix from the primary.
func (s *Store) Keys(prefix string) []string {
	return s.Primary().Keys(prefix)
}

// Failover promotes the most up-to-date replica to primary, discarding the
// failed one. It returns the new primary, or an error when no replica
// remains.
func (s *Store) Failover() (*Replica, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.replicas) == 0 {
		return nil, fmt.Errorf("store: no replica available for failover")
	}
	best := 0
	for i, r := range s.replicas {
		if r.Applied() > s.replicas[best].Applied() {
			best = i
		}
	}
	s.primary = s.replicas[best]
	s.replicas = append(s.replicas[:best:best], s.replicas[best+1:]...)
	s.primary.name = "primary(" + s.primary.name + ")"
	return s.primary, nil
}

// AddReplica attaches a fresh replica, synchronised from the primary.
func (s *Store) AddReplica(name string) *Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := NewReplica(name)
	snap, applied := s.primary.snapshot()
	r.load(snap, applied)
	s.replicas = append(s.replicas, r)
	return r
}
