package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	s := New(2)
	if _, err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Get("a")
	if !ok || string(e.Value) != "1" || e.Version != 1 {
		t.Fatalf("get = %+v %v", e, ok)
	}
	if _, err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key should be gone")
	}
}

func TestReplicasStayConsistent(t *testing.T) {
	s := New(3)
	for i := 0; i < 50; i++ {
		if _, err := s.Put(fmt.Sprintf("k%d", i%7), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	p := s.Primary()
	for _, r := range s.Replicas() {
		if r.Applied() != p.Applied() {
			t.Fatalf("replica %s at %d, primary at %d", r.Name(), r.Applied(), p.Applied())
		}
		for _, k := range p.Keys("") {
			pe, _ := p.Get(k)
			re, ok := r.Get(k)
			if !ok || !bytes.Equal(pe.Value, re.Value) || pe.Version != re.Version {
				t.Fatalf("replica %s diverges at %q", r.Name(), k)
			}
		}
	}
}

func TestKeysPrefix(t *testing.T) {
	s := New(0)
	for _, k := range []string{"ue/1", "ue/2", "path/9", "ue/10"} {
		if _, err := s.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Keys("ue/")
	want := []string{"ue/1", "ue/10", "ue/2"}
	if len(got) != len(want) {
		t.Fatalf("keys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
}

func TestFailoverPreservesState(t *testing.T) {
	s := New(2)
	for i := 0; i < 20; i++ {
		if _, err := s.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	oldApplied := s.Primary().Applied()
	np, err := s.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if np.Applied() != oldApplied {
		t.Fatalf("new primary at %d, want %d", np.Applied(), oldApplied)
	}
	e, ok := s.Get("k7")
	if !ok || e.Value[0] != 7 {
		t.Fatal("state lost across failover")
	}
	// Writes continue after failover.
	if _, err := s.Put("post", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("post"); !ok {
		t.Fatal("post-failover write lost")
	}
}

func TestFailoverExhaustion(t *testing.T) {
	s := New(1)
	if _, err := s.Failover(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Failover(); err == nil {
		t.Fatal("failover with no replicas should fail")
	}
}

func TestAddReplicaCatchesUp(t *testing.T) {
	s := New(0)
	for i := 0; i < 10; i++ {
		if _, err := s.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r := s.AddReplica("late")
	if r.Applied() != s.Primary().Applied() {
		t.Fatal("late replica not caught up")
	}
	if _, err := s.Put("k10", []byte{10}); err != nil {
		t.Fatal(err)
	}
	if e, ok := r.Get("k10"); !ok || e.Value[0] != 10 {
		t.Fatal("late replica missed subsequent write")
	}
}

func TestVersionsMonotone(t *testing.T) {
	s := New(1)
	var last uint64
	for i := 0; i < 30; i++ {
		v, err := s.Put("k", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if v <= last {
			t.Fatalf("version %d not monotone after %d", v, last)
		}
		last = v
	}
}

func TestValueIsolation(t *testing.T) {
	s := New(0)
	buf := []byte("abc")
	if _, err := s.Put("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'z' // caller mutates after Put
	e, _ := s.Get("k")
	if string(e.Value) != "abc" {
		t.Fatal("store must copy values")
	}
}

func TestConcurrentWriters(t *testing.T) {
	s := New(2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.Put(fmt.Sprintf("g%d/%d", g, i), []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				s.Get(fmt.Sprintf("g%d/%d", g, i/2))
			}
		}(g)
	}
	wg.Wait()
	if got := s.Primary().Applied(); got != 400 {
		t.Fatalf("applied = %d, want 400", got)
	}
	for _, r := range s.Replicas() {
		if r.Applied() != 400 {
			t.Fatalf("replica %s at %d", r.Name(), r.Applied())
		}
	}
}

// Property (DESIGN.md §6): after any write sequence and a failover, the new
// primary equals the old primary's state.
func TestFailoverEquivalenceProperty(t *testing.T) {
	f := func(keys []uint8, vals []uint8) bool {
		s := New(2)
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			if _, err := s.Put(fmt.Sprintf("k%d", keys[i]%16), []byte{vals[i]}); err != nil {
				return false
			}
		}
		before := map[string]byte{}
		for _, k := range s.Keys("") {
			e, _ := s.Get(k)
			before[k] = e.Value[0]
		}
		if _, err := s.Failover(); err != nil {
			return false
		}
		after := s.Keys("")
		if len(after) != len(before) {
			return false
		}
		for _, k := range after {
			e, ok := s.Get(k)
			if !ok || e.Value[0] != before[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
