package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFQuantileBasics(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50.5},
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) || !math.IsNaN(c.Fraction(1)) {
		t.Fatal("empty CDF should report NaN")
	}
}

func TestCDFFraction(t *testing.T) {
	var c CDF
	for _, v := range []float64{1, 2, 2, 3} {
		c.Add(v)
	}
	if got := c.Fraction(2); got != 0.75 {
		t.Errorf("Fraction(2) = %v, want 0.75", got)
	}
	if got := c.Fraction(0.5); got != 0 {
		t.Errorf("Fraction(0.5) = %v, want 0", got)
	}
	if got := c.Fraction(10); got != 1 {
		t.Errorf("Fraction(10) = %v, want 1", got)
	}
}

func TestCDFAddN(t *testing.T) {
	var c CDF
	c.AddN(5, 3)
	if c.Len() != 3 || c.Mean() != 5 {
		t.Fatalf("AddN: len=%d mean=%v", c.Len(), c.Mean())
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	var c CDF
	for i := 0; i < 500; i++ {
		c.Add(float64(i * i % 97))
	}
	pts := c.Points(50)
	if len(pts) != 50 {
		t.Fatalf("len(points) = %d, want 50", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatalf("points not monotone at %d: %+v %+v", i, pts[i-1], pts[i])
		}
	}
	if pts[0].Y != 0 || pts[len(pts)-1].Y != 1 {
		t.Fatalf("endpoints wrong: %+v %+v", pts[0], pts[len(pts)-1])
	}
}

// Property: quantile is monotone in q and bounded by [min, max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		var c CDF
		ok := false
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				c.Add(v)
				ok = true
			}
		}
		if !ok {
			return true
		}
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if math.IsNaN(qa) || math.IsNaN(qb) {
			return true
		}
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := c.Quantile(qa), c.Quantile(qb)
		return va <= vb && va >= c.Min() && vb <= c.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Fraction(Quantile(q)) >= q - 1/n. The interpolated quantile can
// land between order statistics, so the bound is loose by one sample.
func TestFractionQuantileInverse(t *testing.T) {
	f := func(raw []int8, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var c CDF
		for _, v := range raw {
			c.Add(float64(v))
		}
		q := float64(qRaw) / 255
		return c.Fraction(c.Quantile(q)) >= q-1/float64(c.Len())-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntSummary(t *testing.T) {
	var s IntSummary
	for _, v := range []int{5, 1, 9, 3, 7} {
		s.Add(v)
	}
	if s.Max() != 9 {
		t.Errorf("Max = %d, want 9", s.Max())
	}
	if s.Median() != 5 {
		t.Errorf("Median = %d, want 5", s.Median())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if s.Total() != 25 {
		t.Errorf("Total = %d, want 25", s.Total())
	}
}

func TestIntSummaryEmpty(t *testing.T) {
	var s IntSummary
	if s.Max() != 0 || s.Median() != 0 || s.Mean() != 0 || s.Len() != 0 {
		t.Fatal("empty summary should be all zero")
	}
}

func TestIntSummaryMedianEven(t *testing.T) {
	var s IntSummary
	for _, v := range []int{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.Median() != 2 {
		t.Errorf("lower median = %d, want 2", s.Median())
	}
}

// Property: median is always one of the observed values and between min/max.
func TestMedianWithinRange(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		var s IntSummary
		ints := make([]int, len(vals))
		for i, v := range vals {
			s.Add(int(v))
			ints[i] = int(v)
		}
		sort.Ints(ints)
		m := s.Median()
		return m >= ints[0] && m <= ints[len(ints)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "count")
	tab.AddRow("alpha", 10)
	tab.AddRow("b", 2.5)
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.50") {
		t.Fatalf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	// Whole floats render without decimals.
	tab2 := NewTable("x")
	tab2.AddRow(3.0)
	if !strings.Contains(tab2.String(), "3\n") {
		t.Errorf("whole float should render as integer:\n%s", tab2.String())
	}
}

// TestQuantileEmptyCDF: every statistic of an empty CDF is NaN, not a
// panic or a zero that could be mistaken for a measurement.
func TestQuantileEmptyCDF(t *testing.T) {
	var c CDF
	for _, q := range []float64{0, 0.5, 0.99999, 1} {
		if v := c.Quantile(q); !math.IsNaN(v) {
			t.Errorf("empty CDF Quantile(%v) = %v, want NaN", q, v)
		}
	}
	if v := c.Mean(); !math.IsNaN(v) {
		t.Errorf("empty CDF Mean() = %v, want NaN", v)
	}
	if v := c.Fraction(1); !math.IsNaN(v) {
		t.Errorf("empty CDF Fraction(1) = %v, want NaN", v)
	}
	if v := c.Min(); !math.IsNaN(v) {
		t.Errorf("empty CDF Min() = %v, want NaN", v)
	}
	if v := c.Max(); !math.IsNaN(v) {
		t.Errorf("empty CDF Max() = %v, want NaN", v)
	}
}

// TestQuantileSingleSample: with one sample every quantile collapses to it,
// including the extreme tails used by the latency reports.
func TestQuantileSingleSample(t *testing.T) {
	var c CDF
	c.Add(42)
	for _, q := range []float64{0, 0.5, 0.99, 0.99999, 1} {
		if v := c.Quantile(q); v != 42 {
			t.Errorf("Quantile(%v) = %v, want 42", q, v)
		}
	}
}

// TestQuantileExtremeTail pins the p99.999 interpolation arithmetic: with
// n samples the tail quantile lands between the last two order statistics,
// so it must interpolate toward the maximum, never overshoot it, and never
// fall below the second-largest sample.
func TestQuantileExtremeTail(t *testing.T) {
	var c CDF
	n := 1000
	for i := 1; i <= n; i++ {
		c.Add(float64(i))
	}
	q := 0.99999
	got := c.Quantile(q)
	// pos = q*(n-1) = 999.99001... between samples[998]=999 and samples[999]=1000.
	pos := q * float64(n-1)
	lo := math.Floor(pos)
	want := float64(999)*(1-(pos-lo)) + 1000*(pos-lo)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
	}
	if got <= 999 || got > 1000 {
		t.Errorf("Quantile(%v) = %v, want in (999, 1000]", q, got)
	}
	if c.Quantile(1) != 1000 {
		t.Errorf("Quantile(1) = %v, want exact max 1000", c.Quantile(1))
	}
}
