// Package metrics provides the statistical helpers the SoftCell evaluation
// needs: empirical CDFs with high-quantile interpolation (the paper reports
// 99.999-percentiles), streaming summaries, histograms, and fixed-width
// table rendering for experiment output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
// The zero value is ready to use.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// AddN appends v n times (useful for per-second counters).
func (c *CDF) AddN(v float64, n int) {
	for i := 0; i < n; i++ {
		c.Add(v)
	}
}

// Len reports the number of samples.
func (c *CDF) Len() int { return len(c.samples) }

// Samples returns a sorted copy of every observation. It exists so callers
// can serialise a distribution byte-exactly — the determinism regression
// tests compare two same-seed runs through it.
func (c *CDF) Samples() []float64 {
	c.sort()
	out := make([]float64, len(c.samples))
	copy(out, c.samples)
	return out
}

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics. It returns NaN for an empty CDF.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	pos := q * float64(len(c.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.samples[lo]
	}
	frac := pos - float64(lo)
	return c.samples[lo]*(1-frac) + c.samples[hi]*frac
}

// Fraction returns the empirical P(X <= v).
func (c *CDF) Fraction(v float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	n := sort.SearchFloat64s(c.samples, math.Nextafter(v, math.Inf(1)))
	return float64(n) / float64(len(c.samples))
}

// Max returns the largest sample (NaN if empty).
func (c *CDF) Max() float64 { return c.Quantile(1) }

// Min returns the smallest sample (NaN if empty).
func (c *CDF) Min() float64 { return c.Quantile(0) }

// Mean returns the arithmetic mean (NaN if empty).
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Points returns n evenly spaced (value, cumulative-fraction) pairs suitable
// for plotting the CDF curve, plus the exact endpoints.
func (c *CDF) Points(n int) []Point {
	if len(c.samples) == 0 || n < 2 {
		return nil
	}
	c.sort()
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		pts = append(pts, Point{X: c.Quantile(frac), Y: frac})
	}
	return pts
}

// Point is one (x, y) pair of a rendered curve.
type Point struct{ X, Y float64 }

// IntSummary summarises a set of integer observations; it is what the
// large-scale simulation reports per switch table (Fig. 7 plots maximum and
// median table sizes).
type IntSummary struct {
	values []int
}

// Add records one observation.
func (s *IntSummary) Add(v int) { s.values = append(s.values, v) }

// Merge folds another summary's observations into s.
func (s *IntSummary) Merge(o IntSummary) { s.values = append(s.values, o.values...) }

// Len reports the number of observations.
func (s *IntSummary) Len() int { return len(s.values) }

// Max returns the largest observation, or 0 when empty.
func (s *IntSummary) Max() int {
	m := 0
	for i, v := range s.values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Median returns the (lower) median observation, or 0 when empty.
func (s *IntSummary) Median() int {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]int(nil), s.values...)
	sort.Ints(sorted)
	return sorted[(len(sorted)-1)/2]
}

// Mean returns the arithmetic mean, or 0 when empty.
func (s *IntSummary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum int
	for _, v := range s.values {
		sum += v
	}
	return float64(sum) / float64(len(s.values))
}

// Total returns the sum of all observations.
func (s *IntSummary) Total() int {
	var sum int
	for _, v := range s.values {
		sum += v
	}
	return sum
}

// Table renders aligned experiment output. Rows are added as strings and
// formatted with left-aligned first column and right-aligned numbers.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; each cell is rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// String renders the table with a header rule.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width[i], cell)
			} else {
				fmt.Fprintf(&b, "%*s", width[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(width)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
