package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ObsCheck enforces the telemetry-name discipline of the obs registry
// (Rules.ObsPkg): every Counter/Gauge/Histogram/EventType/SpanName
// registration must pass its name as a string literal — literal names are
// what keeps the metric namespace greppable and lets this checker see it
// — matching the lowercase dot-separated grammar, and each literal may
// appear at exactly one call site, so a metric has one owner and shared
// handles are shared on purpose. Doc strings name an already-registered
// metric, so they get the literal-and-grammar checks without the
// one-call-site rule. Sub prefixes are validated when literal; computed
// prefixes (per-shard "shard."+i) are the reason scoping exists and stay
// legal.
var ObsCheck = &Analyzer{
	Name: "obscheck",
	Doc:  "obs registrations use literal, well-formed, once-registered metric names",
	Run:  runObsCheck,
}

// obsRegMethods are the Registry methods whose first argument registers a
// full metric/event/span name (two segments minimum).
var obsRegMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "EventType": true,
	"SpanName": true,
}

func runObsCheck(prog *Program, rules *Rules, report Reporter) {
	if rules.ObsPkg == "" {
		return
	}
	firstSite := make(map[string]token.Position) // literal name -> first registration
	for _, pkg := range prog.Pkgs {
		if pkg.Path == rules.ObsPkg {
			continue // the registry's own implementation and helpers
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				method, ok := obsRegistryMethod(pkg, call, rules.ObsPkg)
				if !ok || len(call.Args) == 0 {
					return true
				}
				name, lit := stringLiteral(call.Args[0])
				switch {
				case obsRegMethods[method]:
					if !lit {
						report(call.Args[0].Pos(),
							"obs %s name must be a string literal so the namespace stays greppable and once-registered", method)
						return true
					}
					if !obsValidName(name, 2) {
						report(call.Args[0].Pos(),
							"obs name %q: want lowercase dot-separated segments of [a-z0-9_], at least two", name)
						return true
					}
					if prev, dup := firstSite[name]; dup {
						report(call.Args[0].Pos(),
							"obs name %q already registered at %s:%d; register once and share the handle",
							name, prev.Filename, prev.Line)
						return true
					}
					firstSite[name] = prog.Fset.Position(call.Args[0].Pos())
				case method == "Doc":
					if !lit {
						report(call.Args[0].Pos(),
							"obs Doc name must be a string literal naming the documented metric")
					} else if !obsValidName(name, 2) {
						report(call.Args[0].Pos(),
							"obs name %q: want lowercase dot-separated segments of [a-z0-9_], at least two", name)
					}
				case method == "Sub":
					if lit && !obsValidName(name, 1) {
						report(call.Args[0].Pos(),
							"obs Sub prefix %q: want lowercase dot-separated segments of [a-z0-9_]", name)
					}
				}
				return true
			})
		}
	}
}

// obsRegistryMethod resolves call to a method on the obs Registry type and
// returns its name.
func obsRegistryMethod(pkg *Package, call *ast.CallExpr, obsPkg string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPkg {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return "", false
	}
	return fn.Name(), true
}

// stringLiteral unquotes arg when it is a plain string literal.
func stringLiteral(arg ast.Expr) (string, bool) {
	lit, ok := arg.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// obsValidName mirrors the registry's runtime grammar: dot-separated
// nonempty segments of [a-z0-9_], at least minSeg of them.
func obsValidName(s string, minSeg int) bool {
	segs := strings.Split(s, ".")
	if len(segs) < minSeg {
		return false
	}
	for _, seg := range segs {
		if seg == "" {
			return false
		}
		for _, c := range seg {
			if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
				return false
			}
		}
	}
	return true
}
