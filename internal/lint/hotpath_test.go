package lint

import (
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// graphFixture loads hotgraph and indexes its functions by display name.
func graphFixture(t *testing.T) (map[string]*types.Func, map[*types.Func]declSite) {
	t.Helper()
	prog := loadFixture(t, "hotgraph")
	idx := buildDeclIndex(prog)
	byName := make(map[string]*types.Func, len(idx))
	for fn := range idx {
		byName[funcDisplay(fn)] = fn
	}
	return byName, idx
}

func callsOf(facts *hotFacts) map[string]bool {
	out := make(map[string]bool, len(facts.calls))
	for _, fn := range facts.calls {
		out[funcDisplay(fn)] = true
	}
	return out
}

// TestHotCallGraphRecursion pins the recursive edge: Rec must list itself
// as a callee, and the per-root walk must terminate on the cycle.
func TestHotCallGraphRecursion(t *testing.T) {
	byName, idx := graphFixture(t)
	rec, ok := byName["Rec"]
	if !ok {
		t.Fatal("Rec not in decl index")
	}
	facts := scanHotBody(idx[rec], idx)
	if !callsOf(facts)["Rec"] {
		t.Errorf("Rec's call edges = %v, want the recursive Rec edge", callsOf(facts))
	}
	var allocs int
	for _, v := range facts.viols {
		if v.kind == "alloc" {
			allocs++
		}
	}
	if allocs != 1 {
		t.Errorf("Rec alloc violations = %d, want 1 (the make)", allocs)
	}
}

// TestHotCallGraphMethodValue pins the method-value edge: binding b.Grow
// without calling it must still produce the Grow edge (plus the closure
// allocation for the bound value itself).
func TestHotCallGraphMethodValue(t *testing.T) {
	byName, idx := graphFixture(t)
	tv, ok := byName["TakeValue"]
	if !ok {
		t.Fatal("TakeValue not in decl index")
	}
	facts := scanHotBody(idx[tv], idx)
	if !callsOf(facts)["Box.Grow"] {
		t.Errorf("TakeValue's call edges = %v, want Box.Grow", callsOf(facts))
	}
	found := false
	for _, v := range facts.viols {
		if strings.Contains(v.desc, "bound method value") {
			found = true
		}
	}
	if !found {
		t.Errorf("TakeValue violations = %+v, want a bound-method-value allocation", facts.viols)
	}

	// A package-function reference is an edge but not an allocation.
	ch := byName["CallsHelper"]
	facts = scanHotBody(idx[ch], idx)
	if !callsOf(facts)["helper"] {
		t.Errorf("CallsHelper's call edges = %v, want helper", callsOf(facts))
	}
	for _, v := range facts.viols {
		t.Errorf("CallsHelper has unexpected violation: %s", v.desc)
	}
}

// TestParseEscapes checks the -gcflags=-m output filter.
func TestParseEscapes(t *testing.T) {
	out := []byte(strings.Join([]string{
		"# repro/internal/core",
		"internal/core/controller.go:88:13: make(tagMap) escapes to heap",
		"internal/core/controller.go:90:6: can inline resolvePathLocked",
		"internal/core/partition.go:41:10: moved to heap: out",
		"internal/core/partition.go:44:2: q does not escape",
		"garbage line with no file",
	}, "\n"))
	diags := ParseEscapes("/mod", out)
	if len(diags) != 2 {
		t.Fatalf("ParseEscapes returned %d diags, want 2: %+v", len(diags), diags)
	}
	if diags[0].File != filepath.FromSlash("/mod/internal/core/controller.go") || diags[0].Line != 88 {
		t.Errorf("diags[0] = %+v, want controller.go:88", diags[0])
	}
	if !strings.Contains(diags[1].Msg, "moved to heap") || diags[1].Line != 41 {
		t.Errorf("diags[1] = %+v, want partition.go:41 moved-to-heap", diags[1])
	}
}

// TestEscapeCrossCheck fabricates compiler diagnostics on the hotesc MARK
// lines: only the one inside a hot function's non-panic span fires.
func TestEscapeCrossCheck(t *testing.T) {
	prog := loadFixture(t, "hotesc")

	src := filepath.Join("testdata", "src", "hotesc", "hotesc.go")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(src)
	if err != nil {
		t.Fatal(err)
	}
	marks := make(map[string]int)
	for i, line := range strings.Split(string(data), "\n") {
		if j := strings.Index(line, "MARK:"); j >= 0 {
			marks[strings.TrimSpace(line[j+len("MARK:"):])] = i + 1
		}
	}
	for _, m := range []string{"warm", "crash", "cool"} {
		if marks[m] == 0 {
			t.Fatalf("marker %q not found in %s", m, src)
		}
	}

	rules := &Rules{Escapes: []EscapeDiag{
		{File: abs, Line: marks["warm"], Msg: "p escapes to heap"},
		{File: abs, Line: marks["crash"], Msg: `"hotesc: " + msg escapes to heap`},
		{File: abs, Line: marks["cool"], Msg: "make([]int, 3) escapes to heap"},
	}}
	diags := Run(prog, rules, []*Analyzer{HotPath})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (warm only): %v", len(diags), diags)
	}
	d := diags[0]
	if d.Pos.Line != marks["warm"] || !strings.Contains(d.Message, "compiler escape analysis") ||
		!strings.Contains(d.Message, "Warm") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
