package lint

import (
	"go/types"
)

// Determinism forbids nondeterminism sources in the virtual-clock packages:
// the simulator stack must be byte-replayable from its seed, so wall-clock
// reads (time.Now and friends) and the global, process-seeded math/rand
// functions are banned there. Seeded sources (rand.New(rand.NewSource(s)))
// and the time package's types/constants stay available.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "virtual-clock packages must not read the wall clock or the global rand source",
	Run:  runDeterminism,
}

// forbiddenTimeFuncs are the wall-clock entry points of package time.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true, "Sleep": true,
}

// allowedRandFuncs are the package-level math/rand functions that build
// explicitly seeded sources rather than drawing from the global one.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runDeterminism(prog *Program, rules *Rules, report Reporter) {
	for _, pkg := range prog.Pkgs {
		if !matchPkg(rules.DetermPkgs, pkg.Path) {
			continue
		}
		for id, obj := range pkg.Info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				continue // methods (e.g. (*rand.Rand).Intn, Time.Sub) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTimeFuncs[fn.Name()] {
					report(id.Pos(),
						"time.%s reads the wall clock in a deterministic package; use the sim kernel's virtual clock or inject a clock", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[fn.Name()] {
					report(id.Pos(),
						"global rand.%s draws from the process-seeded source; use a seeded *rand.Rand", fn.Name())
				}
			}
		}
	}
}
