package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrDrop reports discarded error results: a call whose error return is
// assigned to the blank identifier, or used as a bare statement (including
// go/defer statements), silently swallows a failure. Conventionally
// best-effort callees (Close, the fmt printers, bytes.Buffer writes) pass
// through an explicit allowlist; anything else deliberate takes a
// //lint:ignore errdrop <reason>.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "no discarded error results outside the explicit allowlist",
	Run:  runErrDrop,
}

var errType = types.Universe.Lookup("error").Type()

func runErrDrop(prog *Program, rules *Rules, report Reporter) {
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					checkAssign(pkg, n, rules, report)
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						checkBareCall(pkg, call, rules, report)
					}
				case *ast.DeferStmt:
					checkBareCall(pkg, n.Call, rules, report)
				case *ast.GoStmt:
					checkBareCall(pkg, n.Call, rules, report)
				}
				return true
			})
		}
	}
}

// checkAssign flags blank assignments of error results from calls.
func checkAssign(pkg *Package, n *ast.AssignStmt, rules *Rules, report Reporter) {
	// Tuple form: a, _ := f()
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		call, ok := n.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pkg.Info.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(n.Lhs) {
			return
		}
		for i, lhs := range n.Lhs {
			if isBlank(lhs) && isErr(tuple.At(i).Type()) {
				reportDrop(pkg, call, rules, report, n.Pos())
			}
		}
		return
	}
	// Parallel form: _ = f()
	if len(n.Rhs) != len(n.Lhs) {
		return
	}
	for i, lhs := range n.Lhs {
		if !isBlank(lhs) {
			continue
		}
		call, ok := n.Rhs[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if tv, ok := pkg.Info.Types[call]; ok && isErr(tv.Type) {
			reportDrop(pkg, call, rules, report, n.Pos())
		}
	}
}

// checkBareCall flags expression/defer/go calls whose results include an
// error nobody looks at.
func checkBareCall(pkg *Package, call *ast.CallExpr, rules *Rules, report Reporter) {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.IsType() {
		return
	}
	dropsError := false
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErr(t.At(i).Type()) {
				dropsError = true
			}
		}
	default:
		dropsError = isErr(tv.Type)
	}
	if dropsError {
		reportDrop(pkg, call, rules, report, call.Pos())
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErr(t types.Type) bool { return types.Identical(t, errType) }

// reportDrop applies the allowlist, then reports.
func reportDrop(pkg *Package, call *ast.CallExpr, rules *Rules, report Reporter, pos token.Pos) {
	name := calleeLabel(pkg, call)
	if allowedDrop(pkg, call, rules) {
		return
	}
	report(pos, "%s returns an error that is discarded; handle it or allowlist/ignore it", name)
}

// allowedDrop consults the errdrop allowlist for the call's callee.
func allowedDrop(pkg *Package, call *ast.CallExpr, rules *Rules) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return false
	}
	for _, n := range rules.ErrAllowNames {
		if fn.Name() == n {
			return true
		}
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() == nil && fn.Pkg() != nil {
		q := fn.Pkg().Path() + "." + fn.Name()
		for _, allowed := range rules.ErrAllowFuncs {
			if q == allowed {
				return true
			}
		}
	}
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			q := typeName(named)
			for _, allowed := range rules.ErrAllowRecvTypes {
				if q == allowed {
					return true
				}
			}
		}
	}
	return false
}

// calleeFunc resolves the called function object, when statically known.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeLabel names the callee for the diagnostic.
func calleeLabel(pkg *Package, call *ast.CallExpr) string {
	if fn := calleeFunc(pkg, call); fn != nil {
		return fn.Name()
	}
	return "call"
}
