package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"
)

// WireSafe walks every struct type reachable from the control protocol's
// message roots and checks that each field can actually cross the wire:
// no func or chan fields, no interface fields without a registered
// concrete set, and no fields whose struct type exposes nothing (a struct
// with only unexported fields encodes as {} and silently loses state).
//
// Roots are the exported structs in the wire packages whose names carry a
// message suffix (Request/Reply/Report/...), plus explicitly registered
// types; reachability follows exported fields through pointers, slices,
// arrays and maps, across packages.
var WireSafe = &Analyzer{
	Name: "wiresafe",
	Doc:  "structs reachable from ctrlproto message types must be encodable",
	Run:  runWireSafe,
}

func runWireSafe(prog *Program, rules *Rules, report Reporter) {
	w := &wireWalker{prog: prog, rules: rules, report: report, seen: make(map[types.Type]bool)}
	for _, pkg := range prog.Pkgs {
		if !matchPkg(rules.WireRootPkgs, pkg.Path) {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			obj, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || !obj.Exported() || obj.IsAlias() {
				continue
			}
			if !hasSuffix(name, rules.WireRootSuffixes) {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Struct); ok {
				w.checkType(obj.Type(), obj.Pos(), pkg.Path+"."+name)
			}
		}
	}
	for _, root := range rules.WireRoots {
		dot := strings.LastIndex(root, ".")
		if dot < 0 {
			continue
		}
		pkg := prog.Lookup(root[:dot])
		if pkg == nil {
			continue
		}
		if obj, ok := pkg.Types.Scope().Lookup(root[dot+1:]).(*types.TypeName); ok {
			w.checkType(obj.Type(), obj.Pos(), root)
		}
	}
}

func hasSuffix(name string, suffixes []string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

type wireWalker struct {
	prog   *Program
	rules  *Rules
	report Reporter
	seen   map[types.Type]bool
}

// typeName renders a named type as "pkgpath.Name" for allowlist matching
// and messages.
func typeName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// checkType validates one type reachable at path; pos is where to report
// (the referencing field, or the root type's declaration).
func (w *wireWalker) checkType(t types.Type, pos token.Pos, path string) {
	switch t := t.(type) {
	case *types.Basic:
		if t.Kind() == types.UnsafePointer || t.Kind() == types.Uintptr {
			w.report(pos, "%s: %s is not encodable", path, t)
		}
	case *types.Pointer:
		w.checkType(t.Elem(), pos, path)
	case *types.Slice:
		w.checkType(t.Elem(), pos, path)
	case *types.Array:
		w.checkType(t.Elem(), pos, path)
	case *types.Map:
		w.checkType(t.Key(), pos, path)
		w.checkType(t.Elem(), pos, path)
	case *types.Chan:
		w.report(pos, "%s: chan field cannot cross the wire", path)
	case *types.Signature:
		w.report(pos, "%s: func field cannot cross the wire", path)
	case *types.Interface:
		w.report(pos, "%s: interface field has no registered concrete set", path)
	case *types.Named:
		name := typeName(t)
		if matchPkg(w.rules.WireTypeAllow, name) {
			return
		}
		if _, ok := t.Underlying().(*types.Interface); ok {
			if !matchPkg(w.rules.WireIfaceAllow, name) {
				w.report(pos, "%s: interface type %s has no registered concrete set", path, name)
			}
			return
		}
		if w.seen[t] {
			return
		}
		w.seen[t] = true
		if st, ok := t.Underlying().(*types.Struct); ok {
			w.checkStruct(st, pos, path, name)
			return
		}
		w.checkType(t.Underlying(), pos, path)
	case *types.Struct:
		if w.seen[t] {
			return
		}
		w.seen[t] = true
		w.checkStruct(t, pos, path, "")
	case *types.Alias:
		w.checkType(types.Unalias(t), pos, path)
	default:
		w.report(pos, "%s: %s is not encodable", path, t)
	}
}

// checkStruct validates a struct's fields: at least one exported field when
// it has any, and every exported field recursively encodable.
func (w *wireWalker) checkStruct(st *types.Struct, pos token.Pos, path, name string) {
	exported := 0
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Exported() {
			exported++
		}
	}
	if st.NumFields() > 0 && exported == 0 {
		label := name
		if label == "" {
			label = "anonymous struct"
		}
		w.report(pos, "%s: %s has only unexported fields and encodes as nothing", path, label)
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue // unexported fields do not travel; exported ones must be clean
		}
		sub := path
		if name != "" {
			sub = fmt.Sprintf("%s -> %s.%s", path, shortName(name), f.Name())
		}
		w.checkType(f.Type(), f.Pos(), sub)
	}
}

// shortName trims the package path off "pkg/path.Type".
func shortName(qualified string) string {
	if i := strings.LastIndex(qualified, "/"); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}
