package lint

// Rules parameterise the analyzers: which packages each invariant covers
// and the explicit escape lists. Production rules live in DefaultRules;
// tests drive the analyzers over fixture packages with small rule tables.
type Rules struct {
	// LockPkgs are the packages whose "// guarded by <mu>" field
	// annotations lockcheck enforces. Entries ending in "/" are prefixes.
	LockPkgs []string

	// DetermPkgs are the virtual-clock packages where wall-clock time and
	// the global math/rand source are forbidden.
	DetermPkgs []string

	// LayerScope is the import-path prefix under which every package must
	// have a Layer entry; Layer maps a package to the module-local imports
	// it is allowed.
	LayerScope string
	Layer      map[string][]string

	// Construct restricts who may call specific constructors.
	Construct []ConstructRule

	// WireRootPkgs are scanned for message roots: every exported struct
	// whose name carries one of WireRootSuffixes. WireRoots adds explicit
	// "pkgpath.Type" roots outside those packages. WireIfaceAllow lists
	// interface types with a registered concrete set (encodable by
	// convention); WireTypeAllow lists named types accepted as encodable
	// even though their fields are unexported (custom marshalers).
	WireRootPkgs     []string
	WireRootSuffixes []string
	WireRoots        []string
	WireIfaceAllow   []string
	WireTypeAllow    []string

	// ObsPkg is the telemetry registry package whose registration calls
	// obscheck audits (empty disables the analyzer).
	ObsPkg string

	// ErrDrop allowlist: callee base names (any receiver), fully
	// qualified package functions ("fmt.Println"), and receiver types
	// ("bytes.Buffer") whose dropped errors are accepted as best-effort
	// by convention.
	ErrAllowNames     []string
	ErrAllowFuncs     []string
	ErrAllowRecvTypes []string

	// Escapes are compiler escape-analysis diagnostics (ParseEscapes over
	// `go build -gcflags=-m` output). When present, hotpath cross-checks
	// them against every function reachable from a no-alloc root.
	Escapes []EscapeDiag
}

// ConstructRule says only Allowed packages (entries ending in "/" are
// prefixes) may reference Func ("pkgpath.Name").
type ConstructRule struct {
	Func    string
	Allowed []string
}

// DefaultRules is the production rule set for this repository.
func DefaultRules() *Rules {
	return &Rules{
		LockPkgs: []string{
			"repro/internal/agent",
			"repro/internal/chaos",
			"repro/internal/core",
			"repro/internal/ctrlproto",
			"repro/internal/fastpath",
			"repro/internal/obs",
			"repro/internal/shard",
			"repro/internal/store",
			"repro/internal/switchsim",
		},
		DetermPkgs: []string{
			"repro/internal/chaos",
			"repro/internal/fastpath",
			"repro/internal/obs",
			"repro/internal/scenario",
			"repro/internal/sim",
			"repro/internal/simexp",
			"repro/internal/switchsim",
			"repro/internal/workload",
		},
		// The DESIGN.md dependency order: leaves first. A package may only
		// import the module-local packages listed here; adding an import
		// means widening the architecture on purpose, in this table.
		LayerScope: "repro/internal/",
		Layer: map[string][]string{
			"repro/internal/packet":  {},
			"repro/internal/metrics": {},
			"repro/internal/policy":  {},
			"repro/internal/store":   {},
			"repro/internal/sim":     {},
			"repro/internal/obs":     {},
			"repro/internal/lint":    {},
			"repro/internal/topo":    {"repro/internal/packet"},
			"repro/internal/switchsim": {
				"repro/internal/obs", "repro/internal/packet",
			},
			"repro/internal/fastpath": {
				"repro/internal/obs", "repro/internal/packet",
				"repro/internal/switchsim",
			},
			"repro/internal/mbox": {
				"repro/internal/packet", "repro/internal/topo",
			},
			"repro/internal/routing": {
				"repro/internal/packet", "repro/internal/topo",
			},
			"repro/internal/workload": {
				"repro/internal/metrics",
			},
			"repro/internal/core": {
				"repro/internal/metrics", "repro/internal/obs",
				"repro/internal/packet", "repro/internal/policy",
				"repro/internal/routing", "repro/internal/store",
				"repro/internal/topo",
			},
			"repro/internal/agent": {
				"repro/internal/core", "repro/internal/obs",
				"repro/internal/packet", "repro/internal/policy",
				"repro/internal/switchsim",
			},
			"repro/internal/ctrlproto": {
				"repro/internal/core", "repro/internal/obs",
				"repro/internal/packet", "repro/internal/policy",
				"repro/internal/topo",
			},
			"repro/internal/dataplane": {
				"repro/internal/agent", "repro/internal/core",
				"repro/internal/fastpath", "repro/internal/mbox",
				"repro/internal/obs", "repro/internal/packet",
				"repro/internal/policy", "repro/internal/switchsim",
				"repro/internal/topo",
			},
			"repro/internal/scenario": {
				"repro/internal/core", "repro/internal/dataplane",
				"repro/internal/mbox", "repro/internal/packet",
				"repro/internal/policy", "repro/internal/sim",
				"repro/internal/topo",
			},
			"repro/internal/shard": {
				"repro/internal/core", "repro/internal/ctrlproto",
				"repro/internal/obs", "repro/internal/packet",
				"repro/internal/policy", "repro/internal/sim",
				"repro/internal/store", "repro/internal/topo",
			},
			"repro/internal/simexp": {
				"repro/internal/core", "repro/internal/packet",
				"repro/internal/routing", "repro/internal/topo",
			},
			"repro/internal/chaos": {
				"repro/internal/agent", "repro/internal/core",
				"repro/internal/ctrlproto", "repro/internal/obs",
				"repro/internal/packet", "repro/internal/policy",
				"repro/internal/shard", "repro/internal/sim",
				"repro/internal/switchsim", "repro/internal/topo",
			},
			"repro/internal/cbench": {
				"repro/internal/agent", "repro/internal/core",
				"repro/internal/ctrlproto", "repro/internal/dataplane",
				"repro/internal/mbox", "repro/internal/metrics",
				"repro/internal/obs", "repro/internal/packet",
				"repro/internal/policy", "repro/internal/shard",
				"repro/internal/switchsim", "repro/internal/topo",
				"repro/internal/workload",
			},
		},
		Construct: []ConstructRule{
			// Everything else goes through the softcell facade or the shard
			// runtime, which own sub-space partitioning (disjoint pools).
			{
				Func: "repro/internal/core.NewController",
				Allowed: []string{
					"repro", "repro/cmd/",
					"repro/internal/cbench", "repro/internal/shard",
				},
			},
		},
		ObsPkg:           "repro/internal/obs",
		WireRootPkgs:     []string{"repro/internal/ctrlproto"},
		WireRootSuffixes: []string{"Request", "Reply", "Report", "Notify"},
		WireRoots:        []string{"repro/internal/core.AgentLocationReport"},
		ErrAllowNames:    []string{"Close"},
		ErrAllowFuncs: []string{
			"fmt.Print", "fmt.Printf", "fmt.Println",
			"fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln",
		},
		// ctrlproto's conn replies are best-effort by design: a send failure
		// marks the connection dead via c.fail and the read loop tears it
		// down — there is nothing further for the caller to do.
		ErrAllowRecvTypes: []string{
			"bytes.Buffer", "strings.Builder",
			"repro/internal/ctrlproto.conn",
		},
	}
}
