package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockCheck enforces the "// guarded by <mu>" field annotation: within the
// configured packages, a guarded field may only be read or written by a
// function that visibly acquires the corresponding mutex on the same base
// expression (x.mu.Lock() / x.mu.RLock() ... then x.field), or that is
// annotated "// caller holds <mu>" in its doc comment. It also applies a
// self-deadlock heuristic: a function that acquires (or is documented to
// hold) a receiver's mutex must not call another method of that same
// receiver which acquires the same mutex again.
//
// Structs that split their state across several mutexes may document the
// acquisition order with a "lock ordering: mu1, mu2, mu3" line in the
// struct's doc comment. The analyzer then checks every method of that
// struct: walking the body in source order (deferred unlocks hold to
// return, explicit unlocks release), acquiring a mutex while a later-ranked
// one is still held is reported. A "caller holds <mu>" annotation seeds the
// held set, so a helper documented to run under an inner lock cannot
// acquire an outer one.
//
// The check is a heuristic, deliberately flow-insensitive: a Lock anywhere
// in the function body (including one inside a closure) counts as held.
// That keeps it quiet on correct code and loud on the bug class that
// matters — a field access with no lock acquisition in sight.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "guarded-field accesses must hold the annotated mutex; locked methods must not re-lock; documented lock orderings must hold",
	Run:  runLockCheck,
}

var (
	guardedRe     = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)
	callerHoldsRe = regexp.MustCompile(`caller holds ([A-Za-z_][A-Za-z0-9_]*)`)
	lockOrderRe   = regexp.MustCompile(`lock ordering: ([A-Za-z_][A-Za-z0-9_]*(?:,\s*[A-Za-z_][A-Za-z0-9_]*)+)`)
)

// guardInfo records one annotated field.
type guardInfo struct {
	mu         string // name of the mutex field in the same struct
	structName string
}

func runLockCheck(prog *Program, rules *Rules, report Reporter) {
	guarded := make(map[*types.Var]guardInfo)
	// lockingMethods: methods that acquire <receiver>.<mu>; value is the
	// mutex field name. Filled in a first sweep so the self-deadlock pass
	// can resolve callees across files.
	lockingMethods := make(map[*types.Func]string)
	// orderings: per struct type, the documented mutex acquisition order.
	orderings := make(map[*types.TypeName][]string)

	// Pass 1: collect annotations (and validate them) in the lock packages.
	for _, pkg := range prog.Pkgs {
		if !matchPkg(rules.LockPkgs, pkg.Path) {
			continue
		}
		collectGuards(pkg, guarded, report)
		collectOrderings(pkg, orderings, report)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || fn.Recv == nil {
					continue
				}
				recv := receiverName(fn)
				if recv == "" {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				for mu := range lockedMuNames(fn.Body, recv) {
					lockingMethods[obj] = mu
				}
			}
		}
	}
	if len(guarded) == 0 && len(orderings) == 0 {
		return
	}

	// Pass 2: check every function in every package (guarded fields may be
	// exported and touched from anywhere in the tree).
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkFunc(pkg, fn, guarded, lockingMethods, report)
				checkLockOrder(pkg, fn, orderings, report)
			}
		}
	}
}

// collectOrderings records every "lock ordering: a, b, c" struct-doc
// annotation of a package, validating that each name is a mutex field of
// the struct. The doc may sit on the type spec or on its enclosing decl.
func collectOrderings(pkg *Package, orderings map[*types.TypeName][]string, report Reporter) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				doc := ""
				if ts.Doc != nil {
					doc = ts.Doc.Text()
				} else if gd.Doc != nil {
					doc = gd.Doc.Text()
				}
				m := lockOrderRe.FindStringSubmatch(doc)
				if m == nil {
					continue
				}
				var order []string
				bad := false
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if !structHasMutex(pkg, st, name) {
						report(ts.Pos(), "lock ordering names %s but %s.%s is not a sync mutex",
							name, ts.Name.Name, name)
						bad = true
						continue
					}
					order = append(order, name)
				}
				if bad || len(order) < 2 {
					continue
				}
				if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					orderings[tn] = order
				}
			}
		}
	}
}

// checkLockOrder walks a method body in source order, tracking which of
// the receiver type's ordered mutexes are held: Lock/RLock adds (after
// checking no later-ranked mutex is held), Unlock/RUnlock releases, and
// deferred unlocks are ignored (they hold to return). "caller holds"
// annotations seed the held set.
func checkLockOrder(pkg *Package, fn *ast.FuncDecl, orderings map[*types.TypeName][]string, report Reporter) {
	if fn.Recv == nil || len(orderings) == 0 {
		return
	}
	obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	rt := sig.Recv().Type()
	if p, okp := rt.(*types.Pointer); okp {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return
	}
	order := orderings[named.Obj()]
	if order == nil {
		return
	}
	rank := make(map[string]int, len(order))
	for i, mu := range order {
		rank[mu] = i
	}
	recv := receiverName(fn)
	if recv == "" {
		return
	}
	held := make(map[string]bool)
	for mu := range callerHolds(fn) {
		if _, ok := rank[mu]; ok {
			held[mu] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			// Deferred unlocks run at return; they never release mid-body.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok || exprString(muSel.X) != recv {
			return true
		}
		mu := muSel.Sel.Name
		r, ordered := rank[mu]
		if !ordered {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			for h := range held {
				if rank[h] > r {
					report(call.Pos(),
						"acquires %s.%s while holding %s.%s: documented lock ordering is %s",
						recv, mu, recv, h, strings.Join(order, ", "))
				}
			}
			held[mu] = true
		case "Unlock", "RUnlock":
			delete(held, mu)
		}
		return true
	})
}

// collectGuards records every "// guarded by mu" field annotation of a
// package, validating that the named mutex exists in the same struct.
func collectGuards(pkg *Package, guarded map[*types.Var]guardInfo, report Reporter) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := guardAnnotation(field)
				if !ok {
					continue
				}
				if !structHasMutex(pkg, st, mu) {
					report(field.Pos(), "field annotated 'guarded by %s' but %s.%s is not a sync mutex",
						mu, ts.Name.Name, mu)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guarded[v] = guardInfo{mu: mu, structName: ts.Name.Name}
					}
				}
			}
			return true
		})
	}
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment.
func guardAnnotation(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// structHasMutex reports whether the struct declares a field named mu whose
// type is a sync mutex.
func structHasMutex(pkg *Package, st *ast.StructType, mu string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != mu {
				continue
			}
			tv, ok := pkg.Info.Types[field.Type]
			if !ok {
				return false
			}
			return isSyncMutex(tv.Type)
		}
	}
	return false
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// receiverName returns the receiver identifier of a method, "" if unnamed.
func receiverName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return ""
	}
	return fn.Recv.List[0].Names[0].Name
}

// lockedBases collects "base.mu" strings for every mutex acquisition in the
// body: a call of the form <base expr>.<mu>.Lock() or .RLock().
func lockedBases(body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if muSel, ok := sel.X.(*ast.SelectorExpr); ok {
			out[exprString(muSel.X)+"."+muSel.Sel.Name] = true
		} else if id, ok := sel.X.(*ast.Ident); ok {
			// A bare local/package-level mutex: record under its own name.
			out[id.Name] = true
		}
		return true
	})
	return out
}

// lockedMuNames reports which mutex fields of the receiver the body locks.
func lockedMuNames(body *ast.BlockStmt, recv string) map[string]bool {
	out := make(map[string]bool)
	for base := range lockedBases(body) {
		if rest, ok := strings.CutPrefix(base, recv+"."); ok && !strings.Contains(rest, ".") {
			out[rest] = true
		}
	}
	return out
}

// callerHolds parses the "caller holds <mu>" doc annotations of a function.
func callerHolds(fn *ast.FuncDecl) map[string]bool {
	if fn.Doc == nil {
		return nil
	}
	out := make(map[string]bool)
	for _, m := range callerHoldsRe.FindAllStringSubmatch(fn.Doc.Text(), -1) {
		out[m[1]] = true
	}
	return out
}

// checkFunc verifies every guarded-field access in one function and applies
// the self-deadlock heuristic.
func checkFunc(pkg *Package, fn *ast.FuncDecl, guarded map[*types.Var]guardInfo,
	lockingMethods map[*types.Func]string, report Reporter) {
	locked := lockedBases(fn.Body)
	held := callerHolds(fn)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pkg.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		v, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, ok := guarded[v]
		if !ok {
			return true
		}
		base := exprString(sel.X)
		if locked[base+"."+g.mu] || held[g.mu] {
			return true
		}
		report(sel.Pos(),
			"%s.%s is guarded by %s: lock %s.%s or annotate the function '// caller holds %s'",
			g.structName, v.Name(), g.mu, base, g.mu, g.mu)
		return true
	})

	// Self-deadlock heuristic: while holding base.mu, calling a method on
	// that same base which locks its receiver's mu again deadlocks.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		callee, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		mu, ok := lockingMethods[callee]
		if !ok {
			return true
		}
		base := exprString(sel.X)
		if locked[base+"."+mu] || (held[mu] && base == receiverName(fn)) {
			report(call.Pos(),
				"calling %s while %s.%s is held: %s locks %s again (self-deadlock)",
				callee.Name(), base, mu, callee.Name(), mu)
		}
		return true
	})
}

// exprString renders a (selector-chain) expression for base matching.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	default:
		return "?"
	}
}
