package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the tree under analysis. Test
// files (_test.go) are excluded: the invariants guard production code, and
// tests legitimately reach into internals the analyzers would flag.
type Package struct {
	Path  string // import path ("repro/internal/core")
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the full set of loaded packages plus the shared FileSet.
type Program struct {
	Fset   *token.FileSet
	Pkgs   []*Package // sorted by import path
	byPath map[string]*Package
}

// Lookup resolves a loaded package by import path.
func (p *Program) Lookup(path string) *Package { return p.byPath[path] }

// Loader parses and type-checks packages using only the standard library:
// module-local import paths resolve against the module root, everything
// else (the standard library) goes through go/importer's source importer,
// so the whole pipeline works offline with zero dependencies.
type Loader struct {
	ModRoot string // filesystem root of the module
	ModPath string // module path ("repro")

	// FixtureRoot/FixturePrefix let tests load fixture packages: an import
	// path beginning with FixturePrefix maps into FixtureRoot the way
	// module paths map into ModRoot.
	FixtureRoot   string
	FixturePrefix string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at modRoot.
func NewLoader(modRoot, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// dirFor maps an import path to a directory, when the path is ours.
func (l *Loader) dirFor(path string) (string, bool) {
	switch {
	case path == l.ModPath:
		return l.ModRoot, true
	case strings.HasPrefix(path, l.ModPath+"/"):
		return filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/"))), true
	case l.FixturePrefix != "" && strings.HasPrefix(path, l.FixturePrefix):
		return filepath.Join(l.FixtureRoot, filepath.FromSlash(strings.TrimPrefix(path, l.FixturePrefix))), true
	}
	return "", false
}

// Import implements types.Importer: module and fixture paths load through
// the loader itself; anything else is standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, ours := l.dirFor(path); !ours {
		return l.std.Import(path)
	}
	pkg, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// Load parses and type-checks one module-local package (and, transitively,
// everything it imports).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: %q is not a module-local import path", path)
	}
	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// sourceFiles lists the non-test Go files of a directory, sorted.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadAll walks the module tree and loads every package in it (skipping
// testdata, hidden directories, and directories without Go files).
func (l *Loader) LoadAll() (*Program, error) {
	var paths []string
	err := filepath.WalkDir(l.ModRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		names, err := sourceFiles(p)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil // a directory without Go files is simply not a package
		}
		rel, err := filepath.Rel(l.ModRoot, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModPath)
		} else {
			paths = append(paths, l.ModPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := l.Load(p); err != nil {
			return nil, err
		}
	}
	return l.Program(), nil
}

// Program assembles every package loaded so far into a Program.
func (l *Loader) Program() *Program {
	prog := &Program{Fset: l.fset, byPath: make(map[string]*Package, len(l.pkgs))}
	for _, p := range l.pkgs {
		prog.Pkgs = append(prog.Pkgs, p)
		prog.byPath[p.Path] = p
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog
}
