package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// AtomicPub enforces two publication-safety invariants across the whole
// module:
//
//  1. Mixed atomic/plain access: a struct field that is ever passed to a
//     sync/atomic function (atomic.AddUint64(&x.f, 1), ...) is an atomic
//     field; reading or writing it plainly anywhere races with those
//     atomics and is a finding. Accesses inside sync/atomic call arguments
//     are of course exempt.
//
//  2. Immutable after publish: a type whose doc comment contains the
//     phrase "immutable after publish" (FIB snapshots, copy-on-write tag
//     caches) must have no field or element writes outside construction.
//     A write is accepted when (a) the enclosing function returns the
//     marked type (a constructor), (b) the function's doc says
//     "constructs <TypeName>" (a builder helper), or (c) the written
//     value is a function-local built fresh in that body (composite
//     literal, make, or new) — still private, not yet published.
var AtomicPub = &Analyzer{
	Name: "atomicpub",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly; 'immutable after publish' types must only be written during construction",
	Run:  runAtomicPub,
}

var constructsRe = regexp.MustCompile(`constructs ([A-Za-z_][A-Za-z0-9_]*)`)

func runAtomicPub(prog *Program, rules *Rules, report Reporter) {
	checkAtomicFields(prog, report)
	checkImmutablePublish(prog, report)
}

// atomicCallee reports whether the call is into package sync/atomic, and
// if so which function.
func atomicCallee(pkg *Package, call *ast.CallExpr) (*types.Func, bool) {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, false
	}
	return fn, true
}

// checkAtomicFields implements invariant 1.
func checkAtomicFields(prog *Program, report Reporter) {
	// Pass 1: collect every field whose address feeds a sync/atomic call.
	atomicField := make(map[*types.Var]string) // field -> atomic func name seen
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, ok := atomicCallee(pkg, call)
				if !ok {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					selection, ok := pkg.Info.Selections[sel]
					if !ok || selection.Kind() != types.FieldVal {
						continue
					}
					if v, ok := selection.Obj().(*types.Var); ok {
						if _, seen := atomicField[v]; !seen {
							atomicField[v] = "atomic." + fn.Name()
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicField) == 0 {
		return
	}

	// Pass 2: flag every plain selector access to those fields. Subtrees of
	// sync/atomic calls are skipped — their &x.f arguments are the sanctioned
	// access form.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if _, ok := atomicCallee(pkg, call); ok {
						return false
					}
				}
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := pkg.Info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				v, ok := selection.Obj().(*types.Var)
				if !ok {
					return true
				}
				via, ok := atomicField[v]
				if !ok {
					return true
				}
				owner := fieldOwnerName(selection)
				report(sel.Pos(),
					"plain access to %s.%s, which is accessed with %s elsewhere: use atomic loads/stores",
					owner, v.Name(), via)
				return true
			})
		}
	}
}

// fieldOwnerName names the struct a field selection goes through.
func fieldOwnerName(sel *types.Selection) string {
	t := sel.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "struct"
}

// checkImmutablePublish implements invariant 2.
func checkImmutablePublish(prog *Program, report Reporter) {
	marked := make(map[*types.TypeName]bool)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ""
					if ts.Doc != nil {
						doc = ts.Doc.Text()
					} else if gd.Doc != nil {
						doc = gd.Doc.Text()
					}
					if !strings.Contains(doc, "immutable after publish") {
						continue
					}
					if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						marked[tn] = true
					}
				}
			}
		}
	}
	if len(marked) == 0 {
		return
	}

	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkImmutableWrites(pkg, fn, marked, report)
			}
		}
	}
}

// checkImmutableWrites flags writes to marked types in one function.
func checkImmutableWrites(pkg *Package, fn *ast.FuncDecl, marked map[*types.TypeName]bool, report Reporter) {
	allowed := constructorFor(pkg, fn, marked)
	fresh := freshLocals(pkg, fn.Body)

	checkTarget := func(lhs ast.Expr) {
		tn := governingMarkedType(pkg, lhs, marked)
		if tn == nil {
			return
		}
		if allowed[tn] {
			return
		}
		if root := rootIdentVar(pkg, lhs); root != nil && fresh[root] {
			return
		}
		report(lhs.Pos(),
			"write to %s outside construction: the type is immutable after publish (allowed in functions returning it, in '// constructs %s' helpers, or on locals built fresh in the same body)",
			tn.Name(), tn.Name())
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // definitions create new variables, not writes
			}
			for _, lhs := range n.Lhs {
				checkTarget(lhs)
			}
		case *ast.IncDecStmt:
			checkTarget(n.X)
		}
		return true
	})
}

// constructorFor computes which marked types this function may legally
// write: types it returns (possibly behind a pointer) and types its doc
// claims to construct.
func constructorFor(pkg *Package, fn *ast.FuncDecl, marked map[*types.TypeName]bool) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
	if obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok {
			res := sig.Results()
			for i := 0; i < res.Len(); i++ {
				if tn := namedTypeName(res.At(i).Type()); tn != nil && marked[tn] {
					out[tn] = true
				}
			}
		}
	}
	if fn.Doc != nil {
		for _, m := range constructsRe.FindAllStringSubmatch(fn.Doc.Text(), -1) {
			if o, ok := pkg.Types.Scope().Lookup(m[1]).(*types.TypeName); ok && marked[o] {
				out[o] = true
			}
		}
	}
	return out
}

// namedTypeName unwraps pointers down to a named type's TypeName.
func namedTypeName(t types.Type) *types.TypeName {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// governingMarkedType walks a write target down its base chain and returns
// the marked type the write mutates, if any: a field of a marked struct, or
// an element of a marked map/slice type reached along the way.
func governingMarkedType(pkg *Package, e ast.Expr, marked map[*types.TypeName]bool) *types.TypeName {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if tn := namedTypeName(sel.Recv()); tn != nil && marked[tn] {
					return tn
				}
			}
			e = x.X
		case *ast.IndexExpr:
			if tv, ok := pkg.Info.Types[x.X]; ok && tv.Type != nil {
				if tn := namedTypeName(tv.Type); tn != nil && marked[tn] {
					return tn
				}
			}
			e = x.X
		default:
			return nil
		}
	}
}

// rootIdentVar finds the variable at the base of a write target.
func rootIdentVar(pkg *Package, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			v, _ := pkg.Info.Uses[x].(*types.Var)
			return v
		default:
			return nil
		}
	}
}

// freshLocals collects variables defined in this body from a fresh
// allocation: x := T{...}, x := &T{...}, x := make(...), x := new(...).
// Writes through them happen before publication.
func freshLocals(pkg *Package, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !isFreshAlloc(pkg, as.Rhs[i]) {
				continue
			}
			if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// isFreshAlloc reports whether an expression builds a brand-new value.
func isFreshAlloc(pkg *Package, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
				return b.Name() == "make" || b.Name() == "new"
			}
		}
	}
	return false
}
