package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder generalises lockcheck's per-struct "lock ordering:" comments
// into a whole-module lock-acquisition graph. Mutexes are identified at
// the type level — the field (core.Controller.ueMu) or package-level
// variable, not the instance — and an edge a→b means "b was acquired while
// a was held", either directly in one body or through a call chain: each
// function gets a transitive may-acquire summary (computed to a fixpoint),
// and a call made while holding a contributes edges to everything the
// callee may acquire. Documented "lock ordering: a, b, c" struct comments
// contribute their pairwise edges as the declared direction. Any cycle in
// the combined graph is a potential deadlock; every discovered (i.e. not
// merely declared) edge participating in a cycle is reported at the
// acquisition or call site that created it.
//
// Heuristics, deliberately matching lockcheck: the walk is source-order
// and flow-insensitive, deferred unlocks hold to return, and defer/go
// statements, closures, and dynamic (interface) calls are not followed.
// Self-edges (the same type-level mutex on both sides, e.g. locking two
// shards in sequence during a migration) are skipped: instance identity is
// out of scope for a static pass.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "the cross-function lock-acquisition graph (including documented orderings) must be acyclic",
	Run:  runLockOrder,
}

// muEdge is one acquisition-order edge.
type muEdge struct {
	from, to *types.Var
	pos      token.Pos
	declared bool
}

// muCall is a module-local call made with a (possibly empty) held set.
type muCall struct {
	callee *types.Func
	held   []*types.Var
	pos    token.Pos
}

// lockOrderPass carries the shared state of one run.
type lockOrderPass struct {
	prog    *Program
	idx     map[*types.Func]declSite
	names   map[*types.Var]string // display name per mutex
	facts   map[*types.Func]*lockFnFacts
	order   []*types.Func // deterministic function order
	edges   []muEdge
	edgeSet map[[2]*types.Var]bool
}

// lockFnFacts summarises one function for the fixpoint.
type lockFnFacts struct {
	direct []*types.Var // mutexes this body acquires
	calls  []muCall
}

func runLockOrder(prog *Program, rules *Rules, report Reporter) {
	p := &lockOrderPass{
		prog:    prog,
		idx:     buildDeclIndex(prog),
		names:   make(map[*types.Var]string),
		facts:   make(map[*types.Func]*lockFnFacts),
		edgeSet: make(map[[2]*types.Var]bool),
	}

	// Scan every function in the lock packages; mutexes owned by other
	// packages still resolve when touched from covered code.
	for _, pkg := range prog.Pkgs {
		if !matchPkg(rules.LockPkgs, pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				p.order = append(p.order, obj)
				p.facts[obj] = p.scanFunc(pkg, fn)
			}
		}
		p.declaredEdges(pkg)
	}
	if len(p.facts) == 0 {
		return
	}

	p.callEdges()
	p.reportCycles(report)
}

// scanFunc walks one body in source order tracking the held set, recording
// direct edges and calls under held locks.
func (p *lockOrderPass) scanFunc(pkg *Package, fn *ast.FuncDecl) *lockFnFacts {
	facts := &lockFnFacts{}
	var held []*types.Var
	heldSet := make(map[*types.Var]bool)
	for name := range callerHolds(fn) {
		if v := p.receiverMutexField(pkg, fn, name); v != nil && !heldSet[v] {
			held = append(held, v)
			heldSet[v] = true
		}
	}
	directSet := make(map[*types.Var]bool)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.DeferStmt, *ast.FuncLit, *ast.GoStmt:
			// Deferred unlocks hold to return; closures and goroutines run
			// on their own stacks with their own held sets.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			if fnObj := calleeFunc(pkg, call); fnObj != nil {
				if _, local := p.idx[fnObj]; local {
					facts.calls = append(facts.calls, muCall{fnObj, append([]*types.Var(nil), held...), call.Pos()})
				}
			}
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if mu := p.resolveMu(pkg, sel.X); mu != nil {
				for _, h := range held {
					if h != mu {
						p.addEdge(muEdge{from: h, to: mu, pos: call.Pos()})
					}
				}
				if !heldSet[mu] {
					held = append(held, mu)
					heldSet[mu] = true
				}
				if !directSet[mu] {
					directSet[mu] = true
					facts.direct = append(facts.direct, mu)
				}
				return true
			}
		case "Unlock", "RUnlock":
			if mu := p.resolveMu(pkg, sel.X); mu != nil {
				if heldSet[mu] {
					delete(heldSet, mu)
					for i, h := range held {
						if h == mu {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
		}
		if fnObj := calleeFunc(pkg, call); fnObj != nil {
			if _, local := p.idx[fnObj]; local {
				facts.calls = append(facts.calls, muCall{fnObj, append([]*types.Var(nil), held...), call.Pos()})
			}
		}
		return true
	})
	return facts
}

// resolveMu identifies the type-level mutex behind the receiver of a
// Lock/Unlock call: a struct field (via the selection) or a package-level
// variable. Locals are instance-scoped and skipped.
func (p *lockOrderPass) resolveMu(pkg *Package, x ast.Expr) *types.Var {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		sel, ok := pkg.Info.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			return nil
		}
		v, ok := sel.Obj().(*types.Var)
		if !ok || !isSyncMutex(v.Type()) {
			return nil
		}
		if _, ok := p.names[v]; !ok {
			owner := fieldOwnerName(sel)
			pkgName := "?"
			if v.Pkg() != nil {
				pkgName = v.Pkg().Name()
			}
			p.names[v] = pkgName + "." + owner + "." + v.Name()
		}
		return v
	case *ast.Ident:
		v, ok := pkg.Info.Uses[x].(*types.Var)
		if !ok || !isSyncMutex(v.Type()) || v.Pkg() == nil {
			return nil
		}
		if v.Parent() != v.Pkg().Scope() {
			return nil // local mutex: instance-scoped
		}
		if _, ok := p.names[v]; !ok {
			p.names[v] = v.Pkg().Name() + "." + v.Name()
		}
		return v
	}
	return nil
}

// receiverMutexField resolves a "caller holds <mu>" name against the
// receiver type's fields.
func (p *lockOrderPass) receiverMutexField(pkg *Package, fn *ast.FuncDecl, name string) *types.Var {
	obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == name && isSyncMutex(f.Type()) {
			if _, ok := p.names[f]; !ok {
				p.names[f] = named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + f.Name()
			}
			return f
		}
	}
	return nil
}

// declaredEdges turns "lock ordering: a, b, c" struct docs into declared
// pairwise edges. Name validation is lockcheck's job; unknown names are
// silently skipped here.
func (p *lockOrderPass) declaredEdges(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ""
				if ts.Doc != nil {
					doc = ts.Doc.Text()
				} else if gd.Doc != nil {
					doc = gd.Doc.Text()
				}
				m := lockOrderRe.FindStringSubmatch(doc)
				if m == nil {
					continue
				}
				tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				var vars []*types.Var
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					for i := 0; i < st.NumFields(); i++ {
						fld := st.Field(i)
						if fld.Name() == name && isSyncMutex(fld.Type()) {
							if _, ok := p.names[fld]; !ok {
								p.names[fld] = pkg.Types.Name() + "." + tn.Name() + "." + fld.Name()
							}
							vars = append(vars, fld)
							break
						}
					}
				}
				for i := 0; i < len(vars); i++ {
					for j := i + 1; j < len(vars); j++ {
						p.addEdge(muEdge{from: vars[i], to: vars[j], pos: ts.Pos(), declared: true})
					}
				}
			}
		}
	}
}

// addEdge records an edge once; a discovered edge upgrades a declared one
// (so cycles are reported at real acquisition sites when any exist).
func (p *lockOrderPass) addEdge(e muEdge) {
	key := [2]*types.Var{e.from, e.to}
	if p.edgeSet[key] {
		if !e.declared {
			for i := range p.edges {
				if p.edges[i].from == e.from && p.edges[i].to == e.to && p.edges[i].declared {
					p.edges[i] = e
					break
				}
			}
		}
		return
	}
	p.edgeSet[key] = true
	p.edges = append(p.edges, e)
}

// callEdges computes transitive may-acquire summaries to a fixpoint, then
// adds an edge from every held mutex at a call site to everything the
// callee may acquire.
func (p *lockOrderPass) callEdges() {
	trans := make(map[*types.Func]map[*types.Var]bool, len(p.facts))
	for fn, facts := range p.facts {
		set := make(map[*types.Var]bool, len(facts.direct))
		for _, mu := range facts.direct {
			set[mu] = true
		}
		trans[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range p.order {
			set := trans[fn]
			for _, call := range p.facts[fn].calls {
				for mu := range trans[call.callee] {
					if !set[mu] {
						set[mu] = true
						changed = true
					}
				}
			}
		}
	}
	for _, fn := range p.order {
		for _, call := range p.facts[fn].calls {
			if len(call.held) == 0 {
				continue
			}
			acq := trans[call.callee]
			if len(acq) == 0 {
				continue
			}
			var mus []*types.Var
			for mu := range acq {
				mus = append(mus, mu)
			}
			sort.Slice(mus, func(i, j int) bool { return p.names[mus[i]] < p.names[mus[j]] })
			for _, h := range call.held {
				for _, mu := range mus {
					if h != mu {
						p.addEdge(muEdge{from: h, to: mu, pos: call.pos})
					}
				}
			}
		}
	}
}

// reportCycles finds strongly connected components of the edge graph and
// reports every discovered edge inside one. A component held together only
// by declared orderings means the docs themselves conflict; that is
// reported at the declaration.
func (p *lockOrderPass) reportCycles(report Reporter) {
	adj := make(map[*types.Var][]*types.Var)
	var nodes []*types.Var
	nodeSet := make(map[*types.Var]bool)
	for _, e := range p.edges {
		adj[e.from] = append(adj[e.from], e.to)
		for _, v := range [2]*types.Var{e.from, e.to} {
			if !nodeSet[v] {
				nodeSet[v] = true
				nodes = append(nodes, v)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return p.names[nodes[i]] < p.names[nodes[j]] })
	for _, v := range nodes {
		ns := adj[v]
		sort.Slice(ns, func(i, j int) bool { return p.names[ns[i]] < p.names[ns[j]] })
	}

	comp := tarjanSCC(nodes, adj)
	for _, e := range p.edges {
		c, ok := comp[e.from]
		if !ok || c != comp[e.to] || e.from == e.to {
			continue
		}
		// The edge sits inside a cycle. Prefer real sites; report declared
		// edges only when no discovered edge shares the component.
		if e.declared && p.componentHasDiscovered(comp, c) {
			continue
		}
		cycle := p.cyclePath(e, comp, adj)
		if e.declared {
			report(e.pos, "documented lock orderings conflict: %s", cycle)
		} else {
			report(e.pos, "acquiring %s while holding %s creates a lock-order cycle: %s",
				p.names[e.to], p.names[e.from], cycle)
		}
	}
}

func (p *lockOrderPass) componentHasDiscovered(comp map[*types.Var]int, c int) bool {
	for _, e := range p.edges {
		if !e.declared && comp[e.from] == c && comp[e.to] == c && e.from != e.to {
			return true
		}
	}
	return false
}

// cyclePath renders the cycle an edge closes: a shortest path from the
// edge's head back to its tail, within the component.
func (p *lockOrderPass) cyclePath(e muEdge, comp map[*types.Var]int, adj map[*types.Var][]*types.Var) string {
	c := comp[e.from]
	prev := map[*types.Var]*types.Var{e.to: nil}
	queue := []*types.Var{e.to}
	for len(queue) > 0 && prev[e.from] == nil && e.from != e.to {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if comp[w] != c {
				continue
			}
			if _, seen := prev[w]; seen {
				continue
			}
			prev[w] = v
			queue = append(queue, w)
		}
	}
	var path []string
	for v := e.from; v != nil; v = prev[v] {
		path = append(path, p.names[v])
		if v == e.to {
			break
		}
	}
	// path is from..to reversed; render from -> to -> ... -> from.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return p.names[e.from] + " -> " + strings.Join(path, " -> ")
}

// tarjanSCC assigns a component id to every node.
func tarjanSCC(nodes []*types.Var, adj map[*types.Var][]*types.Var) map[*types.Var]int {
	index := make(map[*types.Var]int)
	low := make(map[*types.Var]int)
	onStack := make(map[*types.Var]bool)
	comp := make(map[*types.Var]int)
	var stack []*types.Var
	next, nComp := 0, 0

	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comp
}
