package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// HotPath enforces the "// hotpath:" annotation: a function whose doc
// comment carries
//
//	// hotpath: no alloc, no lock
//
// becomes the root of a call-graph walk over the whole module, and every
// reachable construct that violates one of the declared constraints is a
// finding. The constraints are
//
//	no alloc — no heap allocation: new, make, slice/map composite
//	           literals, &composite literals, closures (func literals and
//	           bound method values), interface boxing of concrete
//	           arguments, and any call into fmt or errors;
//	no lock  — no blocking coordination: sync.Mutex/RWMutex acquisition,
//	           WaitGroup.Wait, Once.Do, Cond.Wait, channel sends/receives,
//	           select, go statements;
//	no io    — no calls into I/O packages (io, os, net, bufio, log, ...).
//
// A function annotated "// hotpath: cold" is an audited slow-path
// boundary: the walk stops there, so a hot function may delegate its miss
// path to a cold helper without the helper's allocations bleeding into the
// hot set. Arguments of panic(...) are exempt everywhere — constructing a
// crash message may allocate. append is deliberately not flagged: the
// amortised-growth idiom is pinned by the ReportAllocs benchmarks instead.
//
// When Rules.Escapes is populated (softcell-lint -escape parses `go build
// -gcflags=-m` output into it), any compiler-reported heap escape inside
// the body of a function reachable from a no-alloc root is also a finding,
// so the annotation and the compiler's own escape analysis cannot drift.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "functions annotated '// hotpath:' must not reach allocations, locks, or I/O; cross-checked against compiler escape analysis via -escape",
	Run:  runHotPath,
}

// EscapeDiag is one heap-escape diagnostic parsed from compiler -m output.
type EscapeDiag struct {
	File string // absolute path
	Line int
	Msg  string
}

// ParseEscapes extracts "escapes to heap" / "moved to heap" diagnostics
// from `go build -gcflags=-m` output, resolving relative paths against
// root. Everything else in the (noisy) -m stream is dropped.
func ParseEscapes(root string, out []byte) []EscapeDiag {
	var diags []EscapeDiag
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		i := strings.Index(line, ".go:")
		if i < 0 {
			continue
		}
		file := line[:i+3]
		rest := line[i+4:] // "LINE:COL: msg"
		parts := strings.SplitN(rest, ":", 3)
		if len(parts) != 3 {
			continue
		}
		msg := strings.TrimSpace(parts[2])
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		ln, err := strconv.Atoi(parts[0])
		if err != nil || ln <= 0 {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		if abs, err := filepath.Abs(file); err == nil {
			file = abs
		}
		diags = append(diags, EscapeDiag{File: file, Line: ln, Msg: msg})
	}
	return diags
}

// hotConstraints is one parsed annotation.
type hotConstraints struct {
	noAlloc bool
	noLock  bool
	noIO    bool
	cold    bool
	label   string // normalised item list, for messages
}

// hotAnnotation extracts the raw item list from a doc comment, if any.
func hotAnnotation(fn *ast.FuncDecl) (string, bool) {
	if fn.Doc == nil {
		return "", false
	}
	for _, line := range strings.Split(fn.Doc.Text(), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "hotpath:"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// parseHotConstraints validates the annotation grammar. It returns a
// non-empty problem description on error.
func parseHotConstraints(raw string) (hotConstraints, string) {
	var c hotConstraints
	var items []string
	for _, item := range strings.Split(raw, ",") {
		item = strings.Join(strings.Fields(item), " ")
		switch item {
		case "no alloc":
			c.noAlloc = true
		case "no lock":
			c.noLock = true
		case "no io":
			c.noIO = true
		case "cold":
			c.cold = true
		case "":
			return c, "empty constraint list: want 'no alloc', 'no lock', 'no io', or 'cold'"
		default:
			return c, fmt.Sprintf("unknown constraint %q (want 'no alloc', 'no lock', 'no io', or 'cold')", item)
		}
		items = append(items, item)
	}
	if c.cold && len(items) > 1 {
		return c, "cold cannot be combined with constraints: a cold function is a walk boundary"
	}
	c.label = strings.Join(items, ", ")
	return c, ""
}

// declSite locates one function declaration with a body.
type declSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// buildDeclIndex maps every module function object to its declaration, so
// call edges can be followed across packages.
func buildDeclIndex(prog *Program) map[*types.Func]declSite {
	idx := make(map[*types.Func]declSite)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					idx[obj] = declSite{pkg, fn}
				}
			}
		}
	}
	return idx
}

// hotViolation is one constraint-relevant construct found in a body.
type hotViolation struct {
	pos  token.Pos
	kind string // "alloc" | "lock" | "io"
	desc string
}

// posRange is a source span (used for panic-argument exemptions).
type posRange struct{ start, end token.Pos }

// hotFacts summarises one function body for the hot-path walk.
type hotFacts struct {
	viols  []hotViolation
	calls  []*types.Func // outgoing edges, source order, deduped
	pruned []posRange    // panic-argument spans, exempt from escape checks
}

var hotIOPkgs = map[string]bool{
	"bufio": true, "io": true, "io/fs": true, "log": true,
	"net": true, "net/http": true, "os": true, "syscall": true,
}

// hotScanner walks one function body collecting violations and call edges.
type hotScanner struct {
	pkg     *Package
	idx     map[*types.Func]declSite
	facts   *hotFacts
	skipLit map[ast.Expr]bool // composite literals already charged via &
	callFun map[ast.Expr]bool // expressions in call-function position
	seen    map[*types.Func]bool
}

// scanHotBody computes the facts of one declaration.
func scanHotBody(site declSite, idx map[*types.Func]declSite) *hotFacts {
	s := &hotScanner{
		pkg:     site.pkg,
		idx:     idx,
		facts:   &hotFacts{},
		skipLit: make(map[ast.Expr]bool),
		callFun: make(map[ast.Expr]bool),
		seen:    make(map[*types.Func]bool),
	}
	ast.Inspect(site.decl.Body, s.visit)
	sort.Slice(s.facts.viols, func(i, j int) bool { return s.facts.viols[i].pos < s.facts.viols[j].pos })
	return s.facts
}

func (s *hotScanner) viol(pos token.Pos, kind, desc string) {
	s.facts.viols = append(s.facts.viols, hotViolation{pos, kind, desc})
}

func (s *hotScanner) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		s.viol(n.Pos(), "alloc", "func literal allocates a closure")
		return false // the closure body runs elsewhere, off this path
	case *ast.GoStmt:
		s.viol(n.Pos(), "lock", "go statement hands off to the scheduler")
		return false
	case *ast.SendStmt:
		s.viol(n.Pos(), "lock", "channel send blocks")
	case *ast.SelectStmt:
		s.viol(n.Pos(), "lock", "select blocks on channels")
	case *ast.RangeStmt:
		if tv, ok := s.pkg.Info.Types[n.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				s.viol(n.Pos(), "lock", "range over channel blocks")
			}
		}
	case *ast.UnaryExpr:
		switch n.Op {
		case token.ARROW:
			s.viol(n.Pos(), "lock", "channel receive blocks")
		case token.AND:
			if lit, ok := n.X.(*ast.CompositeLit); ok {
				s.viol(n.Pos(), "alloc", "&composite literal allocates")
				s.skipLit[lit] = true
			}
		}
	case *ast.BinaryExpr:
		// Constant concatenations fold at compile time and stay silent.
		if n.Op == token.ADD {
			if tv, ok := s.pkg.Info.Types[n]; ok && tv.Type != nil && tv.Value == nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					s.viol(n.Pos(), "alloc", "string concatenation allocates")
				}
			}
		}
	case *ast.CompositeLit:
		if !s.skipLit[n] {
			if tv, ok := s.pkg.Info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					s.viol(n.Pos(), "alloc", "slice literal allocates")
				case *types.Map:
					s.viol(n.Pos(), "alloc", "map literal allocates")
				}
			}
		}
	case *ast.CallExpr:
		return s.visitCall(n)
	case *ast.SelectorExpr:
		// A method selector used as a value (not called) is a bound method
		// value: it captures the receiver in a fresh closure.
		if !s.callFun[n] {
			if sel, ok := s.pkg.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				s.viol(n.Pos(), "alloc", "bound method value allocates a closure")
			}
		}
	case *ast.Ident:
		s.edge(n)
	}
	return true
}

// visitCall classifies one call expression. It returns false when the whole
// subtree has been handled (panic arguments are exempt).
func (s *hotScanner) visitCall(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	s.callFun[fun] = true

	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := s.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				// Crash-message construction is exempt: the program is over.
				s.facts.pruned = append(s.facts.pruned, posRange{call.Pos(), call.End()})
				return false
			case "make":
				s.viol(call.Pos(), "alloc", "make allocates")
			case "new":
				s.viol(call.Pos(), "alloc", "new allocates")
			}
			return true
		}
	}

	// Conversions to an interface type box their operand.
	if tv, ok := s.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			s.checkBoxed(call.Args[0], "conversion")
		}
		return true
	}

	if fn := calleeFunc(s.pkg, call); fn != nil && fn.Pkg() != nil {
		switch path := fn.Pkg().Path(); {
		case path == "fmt":
			s.viol(call.Pos(), "alloc", "fmt."+fn.Name()+" formats and allocates")
			return true // covers the boxing of its arguments too
		case path == "errors":
			s.viol(call.Pos(), "alloc", "errors."+fn.Name()+" allocates")
			return true
		case hotIOPkgs[path]:
			s.viol(call.Pos(), "io", path+"."+fn.Name()+" performs I/O")
		case path == "sync":
			s.violSync(call, fn)
		}
	}
	s.checkBoxing(call)
	return true
}

// violSync flags blocking sync primitives (sync/atomic is a different
// package and stays clean).
func (s *hotScanner) violSync(call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return
	}
	tn, mn := named.Obj().Name(), fn.Name()
	switch {
	case (tn == "Mutex" || tn == "RWMutex") &&
		(mn == "Lock" || mn == "RLock" || mn == "TryLock" || mn == "TryRLock"):
		s.viol(call.Pos(), "lock", "acquires sync."+tn+" ("+mn+")")
	case tn == "WaitGroup" && mn == "Wait",
		tn == "Once" && mn == "Do",
		tn == "Cond" && mn == "Wait":
		s.viol(call.Pos(), "lock", "sync."+tn+"."+mn+" blocks")
	}
}

// checkBoxing flags concrete, non-pointer-shaped arguments passed to
// interface parameters: the value is copied to the heap to fit behind the
// interface word.
func (s *hotScanner) checkBoxing(call *ast.CallExpr) {
	tv, ok := s.pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				return // the slice is passed through as-is
			}
			st, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice)
			if !ok {
				return
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			return
		}
		if !types.IsInterface(pt) {
			continue
		}
		s.checkBoxed(arg, "argument")
	}
}

func (s *hotScanner) checkBoxed(arg ast.Expr, what string) {
	at, ok := s.pkg.Info.Types[arg]
	if !ok || at.Type == nil || at.IsNil() || types.IsInterface(at.Type) {
		return
	}
	// Pointer-shaped values fit in the interface word without allocating.
	switch at.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	if b, ok := at.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return
	}
	s.viol(arg.Pos(), "alloc", what+" boxed into interface allocates")
}

// edge records a call-graph edge for every use of a module function name —
// direct calls, method values, and function references alike.
func (s *hotScanner) edge(id *ast.Ident) {
	fn, ok := s.pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if _, ok := s.idx[fn]; !ok {
		return
	}
	if !s.seen[fn] {
		s.seen[fn] = true
		s.facts.calls = append(s.facts.calls, fn)
	}
}

// funcDisplay names a function for diagnostics ("Controller.RequestPath").
func funcDisplay(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func runHotPath(prog *Program, rules *Rules, report Reporter) {
	idx := buildDeclIndex(prog)

	type rootInfo struct {
		fn   *types.Func
		cons hotConstraints
	}
	var roots []rootInfo
	cold := make(map[*types.Func]bool)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fdecl, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				raw, found := hotAnnotation(fdecl)
				if !found {
					continue
				}
				cons, problem := parseHotConstraints(raw)
				if problem != "" {
					report(fdecl.Pos(), "bad hotpath annotation: %s", problem)
					continue
				}
				obj, _ := pkg.Info.Defs[fdecl.Name].(*types.Func)
				if obj == nil || fdecl.Body == nil {
					continue
				}
				if cons.cold {
					cold[obj] = true
					continue
				}
				roots = append(roots, rootInfo{obj, cons})
			}
		}
	}
	if len(roots) == 0 {
		return
	}

	escByFile := make(map[string][]EscapeDiag)
	for _, e := range rules.Escapes {
		escByFile[e.File] = append(escByFile[e.File], e)
	}

	factsOf := make(map[*types.Func]*hotFacts)
	getFacts := func(fn *types.Func) *hotFacts {
		if f, ok := factsOf[fn]; ok {
			return f
		}
		f := scanHotBody(idx[fn], idx)
		factsOf[fn] = f
		return f
	}

	reported := make(map[string]bool)
	for _, r := range roots {
		rootName := funcDisplay(r.fn)
		type qitem struct {
			fn    *types.Func
			chain string
		}
		visited := map[*types.Func]bool{r.fn: true}
		queue := []qitem{{r.fn, ""}}
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			facts := getFacts(it.fn)
			for _, v := range facts.viols {
				if (v.kind == "alloc" && !r.cons.noAlloc) ||
					(v.kind == "lock" && !r.cons.noLock) ||
					(v.kind == "io" && !r.cons.noIO) {
					continue
				}
				key := fmt.Sprintf("%d|%s", v.pos, v.desc)
				if reported[key] {
					continue
				}
				reported[key] = true
				if it.chain == "" {
					report(v.pos, "%s in hot function %s (hotpath: %s)", v.desc, rootName, r.cons.label)
				} else {
					report(v.pos, "%s reachable from hot function %s via %s (hotpath: %s)",
						v.desc, rootName, it.chain, r.cons.label)
				}
			}
			if r.cons.noAlloc && len(escByFile) > 0 {
				checkEscapes(prog, idx[it.fn], facts, escByFile, rootName, it.chain, reported, report)
			}
			for _, callee := range facts.calls {
				if visited[callee] || cold[callee] {
					continue
				}
				visited[callee] = true
				chain := funcDisplay(callee)
				if it.chain != "" {
					chain = it.chain + " -> " + chain
				}
				queue = append(queue, qitem{callee, chain})
			}
		}
	}
}

// checkEscapes reports compiler escape diagnostics that land inside the
// body of a function on a no-alloc hot path (panic spans exempt).
func checkEscapes(prog *Program, site declSite, facts *hotFacts, escByFile map[string][]EscapeDiag,
	rootName, chain string, reported map[string]bool, report Reporter) {
	body := site.decl.Body
	start := prog.Fset.Position(body.Pos())
	end := prog.Fset.Position(body.End())
	file := start.Filename
	if abs, err := filepath.Abs(file); err == nil {
		file = abs
	}
	diags := escByFile[file]
	if len(diags) == 0 {
		return
	}
	tf := prog.Fset.File(body.Pos())
	for _, e := range diags {
		if e.Line < start.Line || e.Line > end.Line {
			continue
		}
		exempt := false
		for _, pr := range facts.pruned {
			if e.Line >= prog.Fset.Position(pr.start).Line && e.Line <= prog.Fset.Position(pr.end).Line {
				exempt = true
				break
			}
		}
		if exempt {
			continue
		}
		key := fmt.Sprintf("esc|%s|%d|%s", e.File, e.Line, e.Msg)
		if reported[key] {
			continue
		}
		reported[key] = true
		pos := body.Pos()
		if tf != nil && e.Line <= tf.LineCount() {
			pos = tf.LineStart(e.Line)
		}
		where := fmt.Sprintf("in hot function %s", rootName)
		if chain != "" {
			where = fmt.Sprintf("reachable from hot function %s via %s", rootName, chain)
		}
		report(pos, "compiler escape analysis: %s (%s, annotated no alloc)", e.Msg, where)
	}
}
