package lint

import (
	"go/types"
	"strconv"
	"strings"
)

// Layering enforces the DESIGN.md dependency order from an explicit rules
// table: every package under LayerScope must appear in the table and may
// only import the module-local packages its entry lists. It also enforces
// construction restrictions (e.g. only the facade, the shard runtime and
// the benchmarks may build a core.Controller directly, because they own
// the disjoint sub-space partitioning).
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "module-local imports must follow the DESIGN.md dependency table",
	Run:  runLayering,
}

func runLayering(prog *Program, rules *Rules, report Reporter) {
	modPrefix := modulePrefix(rules.LayerScope)
	for _, pkg := range prog.Pkgs {
		entry, listed := rules.Layer[pkg.Path]
		inScope := rules.LayerScope != "" && strings.HasPrefix(pkg.Path, rules.LayerScope)
		if inScope && !listed {
			report(pkg.Files[0].Package,
				"package %s is missing from the layering rules table (internal/lint/rules.go)", pkg.Path)
			continue
		}
		if !listed {
			continue // packages outside the table (cmd/*, root, examples) are unrestricted
		}
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || !strings.HasPrefix(path, modPrefix) {
					continue
				}
				if !matchPkg(entry, path) {
					report(imp.Pos(),
						"package %s may not import %s (extend the layering table if the dependency is intended)",
						pkg.Path, path)
				}
			}
		}
	}

	for _, rule := range rules.Construct {
		runConstructRule(prog, rule, report)
	}
}

// modulePrefix derives the module-local import prefix ("repro/") from the
// layer scope ("repro/internal/").
func modulePrefix(scope string) string {
	if i := strings.Index(scope, "/"); i >= 0 {
		return scope[:i+1]
	}
	return scope
}

// runConstructRule reports uses of the restricted function outside the
// allowed packages.
func runConstructRule(prog *Program, rule ConstructRule, report Reporter) {
	dot := strings.LastIndex(rule.Func, ".")
	if dot < 0 {
		return
	}
	fnPkg, fnName := rule.Func[:dot], rule.Func[dot+1:]
	for _, pkg := range prog.Pkgs {
		if pkg.Path == fnPkg || matchPkg(rule.Allowed, pkg.Path) {
			continue
		}
		for id, obj := range pkg.Info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				continue
			}
			if fn.Pkg().Path() == fnPkg && fn.Name() == fnName {
				report(id.Pos(), "only %s may call %s directly",
					strings.Join(rule.Allowed, ", "), rule.Func)
			}
		}
	}
}
