package lint

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer result in the machine-readable report. Unlike a
// Diagnostic, suppressed findings are included, with the ignore directive's
// reason attached — so the JSON output is an audit trail of every escape
// hatch in use, not just the failures.
type Finding struct {
	Analyzer     string `json:"analyzer"`
	File         string `json:"file"`
	Line         int    `json:"line"`
	Message      string `json:"message"`
	Suppressed   bool   `json:"suppressed,omitempty"`
	IgnoreReason string `json:"ignoreReason,omitempty"`
}

// IgnoreInfo is one //lint:ignore directive with its usage status.
type IgnoreInfo struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	Used     bool   `json:"used"`
}

// Report is the stable schema softcell-lint -json emits
// (results/lint.json).
type Report struct {
	Module    string       `json:"module"`
	Packages  int          `json:"packages"`
	Analyzers []string     `json:"analyzers"`
	Findings  []Finding    `json:"findings"`
	Ignores   []IgnoreInfo `json:"ignores"`
}

// sort orders the report deterministically.
func (r *Report) sort() {
	sort.Slice(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	sort.Slice(r.Ignores, func(i, j int) bool {
		a, b := r.Ignores[i], r.Ignores[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
}

// Relativize rewrites file paths relative to root, when they are under it.
func (r *Report) Relativize(root string) {
	rel := func(p string) string {
		if out, err := filepath.Rel(root, p); err == nil && !filepath.IsAbs(out) &&
			out != ".." && !strings.HasPrefix(out, ".."+string(filepath.Separator)) {
			return filepath.ToSlash(out)
		}
		return p
	}
	for i := range r.Findings {
		r.Findings[i].File = rel(r.Findings[i].File)
	}
	for i := range r.Ignores {
		r.Ignores[i].File = rel(r.Ignores[i].File)
	}
}

// JSON renders the report with stable formatting (trailing newline).
func (r *Report) JSON() ([]byte, error) {
	if r.Findings == nil {
		r.Findings = []Finding{}
	}
	if r.Ignores == nil {
		r.Ignores = []IgnoreInfo{}
	}
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
