// Package lint is softcell-lint: a static-analysis framework, built on the
// standard library alone (go/parser, go/ast, go/types with the source
// importer), that loads and type-checks the whole repository and runs a set
// of repo-specific analyzers over it. The analyzers machine-check the
// invariants the concurrent control plane depends on — lock discipline,
// simulator determinism, package layering, wire-format encodability, and
// no silently dropped errors. See DESIGN.md "Static invariants".
//
// Diagnostics print as "file:line: [rule] message"; a finding can be
// suppressed with a same- or preceding-line comment
//
//	//lint:ignore <rule> <reason>
//
// where the reason is mandatory and an ignore that suppresses nothing is
// itself a finding, so stale escapes cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Reporter emits one finding for the analyzer it was handed to.
type Reporter func(pos token.Pos, format string, args ...any)

// Analyzer is one pluggable invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, rules *Rules, report Reporter)
}

// Analyzers is the full production set, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockCheck, LockOrder, HotPath, AtomicPub,
		Determinism, Layering, WireSafe, ErrDrop, ObsCheck,
	}
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

// ignoreKey addresses directives by the source line they cover.
type ignoreKey struct {
	file string
	line int
}

// knownRuleNames is the set of rule names a directive may legally name:
// the production analyzers, whatever extra analyzers this run carries, and
// the "lint" pseudo-rule itself.
func knownRuleNames(analyzers []*Analyzer) map[string]bool {
	known := map[string]bool{"lint": true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

// collectIgnores parses every //lint:ignore directive in the program.
// A directive covers its own line and the line after it, so it works both
// as a trailing comment and as a comment line above the finding. Matching
// is analyzer-exact: a directive only ever suppresses findings of the rule
// it names, and naming an unknown analyzer is itself a finding (so a typo
// cannot silently consume anything). Malformed directives are reported
// immediately under the pseudo-rule "lint".
func collectIgnores(prog *Program, known map[string]bool, report func(Diagnostic)) map[ignoreKey][]*ignoreDirective {
	out := make(map[ignoreKey][]*ignoreDirective)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) < 2 {
						report(Diagnostic{Pos: pos, Rule: "lint",
							Message: "malformed directive: want //lint:ignore <rule> <reason>"})
						continue
					}
					if !known[fields[0]] {
						report(Diagnostic{Pos: pos, Rule: "lint",
							Message: fmt.Sprintf("//lint:ignore names unknown analyzer %q", fields[0])})
						continue
					}
					d := &ignoreDirective{pos: pos, rule: fields[0], reason: strings.Join(fields[1:], " ")}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := ignoreKey{pos.Filename, line}
						out[k] = append(out[k], d)
					}
				}
			}
		}
	}
	return out
}

// Run executes the analyzers over the program and returns the surviving
// diagnostics sorted by position. Ignored findings are dropped; unused or
// malformed ignore directives are themselves reported.
func Run(prog *Program, rules *Rules, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunReport(prog, rules, analyzers)
	return diags
}

// RunReport is Run plus a machine-readable report of everything that
// happened: every finding (including the suppressed ones, marked as such)
// and every ignore directive with its usage status.
func RunReport(prog *Program, rules *Rules, analyzers []*Analyzer) ([]Diagnostic, *Report) {
	var diags []Diagnostic
	ignores := collectIgnores(prog, knownRuleNames(analyzers), func(d Diagnostic) { diags = append(diags, d) })
	for _, a := range analyzers {
		name := a.Name
		report := func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:     prog.Fset.Position(pos),
				Rule:    name,
				Message: fmt.Sprintf(format, args...),
			})
		}
		a.Run(prog, rules, report)
	}
	rep := &Report{Packages: len(prog.Pkgs)}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	kept := diags[:0]
	for _, d := range diags {
		f := Finding{Analyzer: d.Rule, File: d.Pos.Filename, Line: d.Pos.Line, Message: d.Message}
		if d.Rule != "lint" {
			for _, ig := range ignores[ignoreKey{d.Pos.Filename, d.Pos.Line}] {
				if ig.rule == d.Rule {
					ig.used = true
					f.Suppressed = true
					f.IgnoreReason = ig.reason
				}
			}
		}
		rep.Findings = append(rep.Findings, f)
		if !f.Suppressed {
			kept = append(kept, d)
		}
	}
	diags = kept
	seen := make(map[*ignoreDirective]bool)
	for _, list := range ignores {
		for _, ig := range list {
			if seen[ig] {
				continue
			}
			seen[ig] = true
			rep.Ignores = append(rep.Ignores, IgnoreInfo{
				File: ig.pos.Filename, Line: ig.pos.Line,
				Analyzer: ig.rule, Reason: ig.reason, Used: ig.used,
			})
			if ig.used {
				continue
			}
			// Without compiler escape data, hotpath directives that exist to
			// suppress escape-analysis findings (reported at inlined call
			// sites) cannot be told apart from stale ones; the staleness
			// check for them runs only under -escape, which the make
			// lint/verify gate always passes.
			if ig.rule == HotPath.Name && len(rules.Escapes) == 0 {
				continue
			}
			d := Diagnostic{Pos: ig.pos, Rule: "lint",
				Message: fmt.Sprintf("unused //lint:ignore %s directive", ig.rule)}
			diags = append(diags, d)
			rep.Findings = append(rep.Findings, Finding{
				Analyzer: "lint", File: d.Pos.Filename, Line: d.Pos.Line, Message: d.Message,
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	rep.sort()
	return diags, rep
}

// matchPkg reports whether path matches any entry: exact, or prefix when
// the entry ends in "/".
func matchPkg(entries []string, path string) bool {
	for _, e := range entries {
		if e == path || (strings.HasSuffix(e, "/") && strings.HasPrefix(path, e)) {
			return true
		}
	}
	return false
}

// funcDocHas reports whether a function's doc comment contains the phrase.
func funcDocHas(fn *ast.FuncDecl, phrase string) bool {
	return fn.Doc != nil && strings.Contains(fn.Doc.Text(), phrase)
}
