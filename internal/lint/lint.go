// Package lint is softcell-lint: a static-analysis framework, built on the
// standard library alone (go/parser, go/ast, go/types with the source
// importer), that loads and type-checks the whole repository and runs a set
// of repo-specific analyzers over it. The analyzers machine-check the
// invariants the concurrent control plane depends on — lock discipline,
// simulator determinism, package layering, wire-format encodability, and
// no silently dropped errors. See DESIGN.md "Static invariants".
//
// Diagnostics print as "file:line: [rule] message"; a finding can be
// suppressed with a same- or preceding-line comment
//
//	//lint:ignore <rule> <reason>
//
// where the reason is mandatory and an ignore that suppresses nothing is
// itself a finding, so stale escapes cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Reporter emits one finding for the analyzer it was handed to.
type Reporter func(pos token.Pos, format string, args ...any)

// Analyzer is one pluggable invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, rules *Rules, report Reporter)
}

// Analyzers is the full production set, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockCheck, Determinism, Layering, WireSafe, ErrDrop, ObsCheck}
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

// ignoreKey addresses directives by the source line they cover.
type ignoreKey struct {
	file string
	line int
}

// collectIgnores parses every //lint:ignore directive in the program.
// A directive covers its own line and the line after it, so it works both
// as a trailing comment and as a comment line above the finding. Malformed
// directives are reported immediately under the pseudo-rule "lint".
func collectIgnores(prog *Program, report func(Diagnostic)) map[ignoreKey][]*ignoreDirective {
	out := make(map[ignoreKey][]*ignoreDirective)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) < 2 {
						report(Diagnostic{Pos: pos, Rule: "lint",
							Message: "malformed directive: want //lint:ignore <rule> <reason>"})
						continue
					}
					d := &ignoreDirective{pos: pos, rule: fields[0], reason: strings.Join(fields[1:], " ")}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := ignoreKey{pos.Filename, line}
						out[k] = append(out[k], d)
					}
				}
			}
		}
	}
	return out
}

// Run executes the analyzers over the program and returns the surviving
// diagnostics sorted by position. Ignored findings are dropped; unused or
// malformed ignore directives are themselves reported.
func Run(prog *Program, rules *Rules, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	ignores := collectIgnores(prog, func(d Diagnostic) { diags = append(diags, d) })
	for _, a := range analyzers {
		name := a.Name
		report := func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:     prog.Fset.Position(pos),
				Rule:    name,
				Message: fmt.Sprintf(format, args...),
			})
		}
		a.Run(prog, rules, report)
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		if d.Rule != "lint" {
			for _, ig := range ignores[ignoreKey{d.Pos.Filename, d.Pos.Line}] {
				if ig.rule == d.Rule {
					ig.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	diags = kept
	seen := make(map[*ignoreDirective]bool)
	for _, list := range ignores {
		for _, ig := range list {
			if seen[ig] || ig.used {
				continue
			}
			seen[ig] = true
			diags = append(diags, Diagnostic{Pos: ig.pos, Rule: "lint",
				Message: fmt.Sprintf("unused //lint:ignore %s directive", ig.rule)})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return diags
}

// matchPkg reports whether path matches any entry: exact, or prefix when
// the entry ends in "/".
func matchPkg(entries []string, path string) bool {
	for _, e := range entries {
		if e == path || (strings.HasSuffix(e, "/") && strings.HasPrefix(path, e)) {
			return true
		}
	}
	return false
}

// funcDocHas reports whether a function's doc comment contains the phrase.
func funcDocHas(fn *ast.FuncDecl, phrase string) bool {
	return fn.Doc != nil && strings.Contains(fn.Doc.Text(), phrase)
}
