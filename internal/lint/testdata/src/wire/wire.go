// Package wire is a wiresafe fixture: message roots by suffix and by
// explicit registration, with every non-encodable field shape represented.
package wire

// Namer is an interface nobody registered a concrete set for.
type Namer interface{ Name() string }

// Classifier is an interface the fixture rules allowlist (registered
// concrete set on both ends).
type Classifier interface{ Class() int }

// Inner rides inside a message; its unexported field simply does not
// travel, which is fine as long as something exported remains.
type Inner struct {
	Value  int
	opaque int
}

// hidden has no exported fields at all: it encodes as nothing.
type hidden struct {
	secret int
}

// Blob also has only unexported fields but is allowlisted (it carries a
// custom marshaler by convention).
type Blob struct {
	raw []byte
}

// StatusReport is a message root by suffix.
type StatusReport struct {
	ID      uint64
	Done    chan struct{} // want "chan field cannot cross the wire"
	Hook    func()        // want "func field cannot cross the wire"
	Any     interface{}   // want "interface field has no registered concrete set"
	Who     Namer         // want "interface type fixture/wire.Namer has no registered concrete set"
	Rule    Classifier
	Payload Inner
	Dark    hidden // want "has only unexported fields and encodes as nothing"
	Data    Blob
	Tags    []string
	ByID    map[uint64]*Inner
}

// SideChannel does not match any message suffix; the fixture registers it
// as an explicit wire root.
type SideChannel struct {
	C chan int // want "chan field cannot cross the wire"
}

// Plain matches no suffix and is not registered, so nobody checks it.
type Plain struct {
	Ch chan int
}
