// Package lock is a lockcheck fixture: guarded-field annotations, the
// caller-holds escape, and the self-deadlock heuristic.
package lock

import "sync"

// Counter is a mutex-guarded counter.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	ok int
}

// Inc acquires the mutex before touching the guarded field.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Peek reads the guarded field without the lock.
func (c *Counter) Peek() int {
	return c.n // want "Counter.n is guarded by mu"
}

// Unguarded may touch ok freely: it carries no annotation.
func (c *Counter) Unguarded() int {
	return c.ok
}

// addLocked is exempted by annotation.
//
// caller holds mu
func (c *Counter) addLocked(d int) {
	c.n += d
}

// Add locks and delegates to the annotated helper.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(d)
}

// Double calls a locking method while already holding the mutex.
func (c *Counter) Double() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Inc() // want "self-deadlock"
}

// Drain reads the guarded field from a plain function, no lock in sight.
func Drain(c *Counter) int {
	return c.n // want "Counter.n is guarded by mu"
}

// DrainLocked does the same but visibly acquires the mutex first.
func DrainLocked(c *Counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Sloppy names a guard that is not a mutex in the struct.
type Sloppy struct {
	data int // guarded by lock; want "not a sync mutex"
	lock int
}

// Registry splits its state across three mutexes, each guarding its own
// fields, with a documented acquisition order.
//
// lock ordering: idxMu, allocMu, tabMu
type Registry struct {
	idxMu   sync.RWMutex
	allocMu sync.Mutex
	tabMu   sync.Mutex

	names map[string]int // guarded by idxMu
	next  int            // guarded by allocMu
	table []int          // guarded by tabMu
}

// Lookup takes only the read lock of the index mutex.
func (r *Registry) Lookup(s string) int {
	r.idxMu.RLock()
	defer r.idxMu.RUnlock()
	return r.names[s]
}

// Register nests the allocator and table locks inside the index lock, in
// the documented order.
func (r *Registry) Register(s string) int {
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	r.allocMu.Lock()
	id := r.next
	r.next++
	r.allocMu.Unlock()
	r.names[s] = id
	r.tabMu.Lock()
	r.table = append(r.table, id)
	r.tabMu.Unlock()
	return id
}

// CrossGuard holds a mutex — just not the one guarding the field.
func (r *Registry) CrossGuard() int {
	r.tabMu.Lock()
	defer r.tabMu.Unlock()
	return r.next // want "Registry.next is guarded by allocMu"
}

// Reversed acquires the index lock while still holding the table lock.
func (r *Registry) Reversed() {
	r.tabMu.Lock()
	defer r.tabMu.Unlock()
	r.idxMu.Lock() // want "documented lock ordering is idxMu, allocMu, tabMu"
	r.names["x"] = 0
	r.idxMu.Unlock()
}

// Sequenced releases the table lock before taking the allocator lock:
// out-of-order acquisitions are fine when nothing later-ranked is held.
func (r *Registry) Sequenced() {
	r.tabMu.Lock()
	r.table = nil
	r.tabMu.Unlock()
	r.allocMu.Lock()
	r.next = 0
	r.allocMu.Unlock()
}

// innerHeld is documented to run under the table lock, so it must not
// reach outward for an earlier-ranked mutex.
//
// caller holds tabMu
func (r *Registry) innerHeld() {
	r.allocMu.Lock() // want "acquires r.allocMu while holding r.tabMu"
	r.next++
	r.allocMu.Unlock()
	r.table = append(r.table, 0)
}

// Misordered documents an ordering naming a non-mutex field.
//
// lock ordering: mu, gate
type Misordered struct { // want "lock ordering names gate"
	mu   sync.Mutex
	gate int
}
