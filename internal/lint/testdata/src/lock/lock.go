// Package lock is a lockcheck fixture: guarded-field annotations, the
// caller-holds escape, and the self-deadlock heuristic.
package lock

import "sync"

// Counter is a mutex-guarded counter.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	ok int
}

// Inc acquires the mutex before touching the guarded field.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Peek reads the guarded field without the lock.
func (c *Counter) Peek() int {
	return c.n // want "Counter.n is guarded by mu"
}

// Unguarded may touch ok freely: it carries no annotation.
func (c *Counter) Unguarded() int {
	return c.ok
}

// addLocked is exempted by annotation.
//
// caller holds mu
func (c *Counter) addLocked(d int) {
	c.n += d
}

// Add locks and delegates to the annotated helper.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(d)
}

// Double calls a locking method while already holding the mutex.
func (c *Counter) Double() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Inc() // want "self-deadlock"
}

// Drain reads the guarded field from a plain function, no lock in sight.
func Drain(c *Counter) int {
	return c.n // want "Counter.n is guarded by mu"
}

// DrainLocked does the same but visibly acquires the mutex first.
func DrainLocked(c *Counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Sloppy names a guard that is not a mutex in the struct.
type Sloppy struct {
	data int // guarded by lock; want "not a sync mutex"
	lock int
}
