// Package lockord exercises the cross-function lock-order analyzer: a
// two-mutex cycle closed through a helper call, a declared ordering
// violated interprocedurally, caller-holds seeding, release handling, and
// the type-level self-edge exemption.
package lockord

import "sync"

// A guards one half of the pair.
type A struct {
	mu sync.Mutex
	n  int
}

// B guards the other half.
type B struct {
	mu sync.Mutex
	n  int
}

// Pair owns both halves.
type Pair struct {
	a A
	b B
}

// Fwd locks a.mu then reaches b.mu through a helper: edge A.mu -> B.mu.
func (p *Pair) Fwd() {
	p.a.mu.Lock()
	defer p.a.mu.Unlock()
	p.lockB() // want `acquiring lockord\.B\.mu while holding lockord\.A\.mu creates a lock-order cycle`
}

// lockB acquires B's mutex.
func (p *Pair) lockB() {
	p.b.mu.Lock()
	p.b.n++
	p.b.mu.Unlock()
}

// Rev locks b.mu then a.mu directly: the reverse edge closes the cycle.
func (p *Pair) Rev() {
	p.b.mu.Lock()
	p.a.mu.Lock() // want `acquiring lockord\.A\.mu while holding lockord\.B\.mu creates a lock-order cycle: lockord\.B\.mu -> lockord\.A\.mu -> lockord\.B\.mu`
	p.a.n++
	p.a.mu.Unlock()
	p.b.mu.Unlock()
}

// Seq releases before acquiring: no edge, no report.
func (p *Pair) Seq() {
	p.b.mu.Lock()
	p.b.n++
	p.b.mu.Unlock()
	p.a.mu.Lock()
	p.a.n++
	p.a.mu.Unlock()
}

// Both locks two instances of the same type through a helper: the
// type-level self edge is deliberately exempt (instance identity is out
// of scope).
func Both(x, y *A) {
	x.mu.Lock()
	lockA(y)
	x.mu.Unlock()
}

func lockA(a *A) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

// Reg documents muA before muB; Wrong violates it through a helper call.
//
// lock ordering: muA, muB
type Reg struct {
	muA sync.Mutex
	muB sync.Mutex
	n   int
}

// Wrong holds muB and calls a helper that takes muA: against the
// documented direction.
func (r *Reg) Wrong() {
	r.muB.Lock()
	defer r.muB.Unlock()
	r.grabA() // want `acquiring lockord\.Reg\.muA while holding lockord\.Reg\.muB creates a lock-order cycle`
}

// grabA locks muA.
func (r *Reg) grabA() {
	r.muA.Lock()
	r.n++
	r.muA.Unlock()
}

// Hold documents hmA before hmB; underB runs under the inner lock by
// contract and must not reach for the outer one.
//
// lock ordering: hmA, hmB
type Hold struct {
	hmA sync.Mutex
	hmB sync.Mutex
	n   int
}

// underB is documented to run with hmB held.
//
// caller holds hmB
func (h *Hold) underB() {
	h.hmA.Lock() // want `acquiring lockord\.Hold\.hmA while holding lockord\.Hold\.hmB creates a lock-order cycle`
	h.n++
	h.hmA.Unlock()
}
