// Package determ is a determinism fixture: wall-clock reads and the global
// math/rand source are forbidden, seeded sources are fine.
package determ

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock, which a replay cannot reproduce.
func Stamp() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// Age measures against the wall clock.
func Age(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since reads the wall clock"
}

// Roll draws from the global, process-seeded source.
func Roll() int {
	return rand.Intn(6) // want `global rand.Intn draws from the process-seeded source`
}

// Seeded is the approved pattern: an explicitly seeded source, whose
// methods (not the package-level functions) supply the randomness.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Elapse uses time's types and arithmetic, which are pure and allowed.
func Elapse(a, b time.Time) time.Duration {
	return b.Sub(a) + 2*time.Second
}
