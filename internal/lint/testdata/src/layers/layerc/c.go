// Package layerc is deliberately missing from the fixture's layering table.
package layerc // want "missing from the layering rules table"

// Widget is built by the restricted constructor.
type Widget struct {
	ID int
}

// NewWidget is the constructor the fixture restricts to layera.
func NewWidget(id int) *Widget {
	return &Widget{ID: id}
}
