// Package layera is the leaf layer of the layering fixture.
package layera

// Unit is the leaf's exported constant.
const Unit = 1
