// Package layerb sits above layera and is only allowed to import it.
package layerb

import (
	"fixture/layers/layera"
	"fixture/layers/layerc" // want "may not import fixture/layers/layerc"
)

// Span combines the leaf constant with a widget built through the
// restricted constructor.
func Span() int {
	w := layerc.NewWidget(layera.Unit) // want "only fixture/layers/layera may call"
	return w.ID + layera.Unit
}
