// Package errdrop is an errdrop fixture: every dropped-error shape, the
// allowlist, and the //lint:ignore escape hatch.
package errdrop

import "errors"

// fail always errors.
func fail() error { return errors.New("boom") }

// pair returns a value and an error.
func pair() (int, error) { return 0, errors.New("boom") }

// File is closable; Close is allowlisted by name in the fixture rules.
type File struct{}

// Close never fails here.
func (*File) Close() error { return nil }

// Drops collects every dropped-error shape the analyzer flags.
func Drops() {
	_ = fail()     // want "fail returns an error that is discarded"
	fail()         // want "fail returns an error that is discarded"
	n, _ := pair() // want "pair returns an error that is discarded"
	_ = n
	defer fail() // want "fail returns an error that is discarded"
	go fail()    // want "fail returns an error that is discarded"
}

// Accepted shows the allowlist, the escape hatch, and honest handling.
func Accepted() error {
	f := &File{}
	_ = f.Close()
	//lint:ignore errdrop demonstrates the escape hatch
	_ = fail()
	if v, err := pair(); err == nil {
		_ = v
	}
	return fail()
}
