// Package hot exercises the hotpath analyzer: constraint violations in
// annotated roots, cross-function reachability, cold boundaries, the
// panic exemption, and the ignore escape hatch.
package hot

import (
	"fmt"
	"os"
	"sync"
)

// S carries the state the hot functions touch.
type S struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// Fast violates the no-alloc and no-lock constraints in one body.
//
// hotpath: no alloc, no lock
func (s *S) Fast(n int) int {
	buf := make([]int, n)        // want `\[hotpath\] make allocates in hot function S.Fast`
	p := new(S)                  // want `new allocates`
	q := &S{}                    // want `&composite literal allocates`
	lit := []int{1, 2}           // want `slice literal allocates`
	f := func() int { return 1 } // want `func literal allocates a closure`
	fmt.Println(n)               // want `fmt\.Println formats and allocates`
	s.mu.Lock()                  // want `acquires sync\.Mutex \(Lock\)`
	s.mu.Unlock()
	s.ch <- 1   // want `channel send blocks`
	v := <-s.ch // want `channel receive blocks`
	go helper() // want `go statement hands off to the scheduler`
	return buf[0] + p.n + q.n + lit[0] + f() + v
}

func helper() {}

// Box passes a concrete value to an interface parameter.
//
// hotpath: no alloc
func Box(v int) {
	sink(v) // want `argument boxed into interface allocates`
}

func sink(x interface{}) { _ = x }

// Label concatenates at runtime.
//
// hotpath: no alloc
func Label(s string) string {
	return "id-" + s // want `string concatenation allocates`
}

// Bind returns a bound method value, which captures its receiver.
//
// hotpath: no alloc
func (s *S) Bind() func() int {
	return s.fetch // want `bound method value allocates a closure`
}

func (s *S) fetch() int { return s.n }

// Outer reaches an allocation two calls down; the finding names the chain.
//
// hotpath: no alloc
func Outer() int { return mid() }

func mid() int { return leaf() }

func leaf() int {
	b := make([]int, 4) // want `make allocates reachable from hot function Outer via mid -> leaf`
	return b[0]
}

// Guard panics with a formatted message: panic arguments are exempt, so
// this stays silent even though the concatenation allocates.
//
// hotpath: no alloc
func Guard(ok bool) {
	if !ok {
		panic("hot: invariant broken: " + name())
	}
}

func name() string { return "guard" }

// Cached delegates its miss path to an audited cold helper; the walk stops
// at the boundary.
//
// hotpath: no alloc
func Cached() int {
	return slowFill()
}

// slowFill is the audited slow path: allocations here are deliberate.
//
// hotpath: cold
func slowFill() int {
	b := make([]int, 8)
	return b[0]
}

// Direct is annotated no io and reads a file.
//
// hotpath: no io
func Direct(f *os.File, b []byte) int {
	n, _ := f.Read(b) // want `os\.Read performs I/O`
	return n
}

// Grow acknowledges an amortised growth reallocation with a directive.
//
// hotpath: no alloc
func Grow(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n) //lint:ignore hotpath amortised growth, reused across bursts
	}
	return buf[:n]
}

// BadItem has an unknown constraint.
//
// hotpath: no gc
func BadItem() {} // want `bad hotpath annotation: unknown constraint "no gc"`

// BadCold combines cold with a constraint.
//
// hotpath: cold, no alloc
func BadCold() {} // want `cold cannot be combined`
