// Package ignores exercises the directive machinery: a well-formed ignore
// that suppresses nothing, and a malformed one. Both are findings.
package ignores

// Twiddle carries a stale suppression.
func Twiddle() int {
	//lint:ignore errdrop this suppresses nothing
	return 1
}

// Fiddle carries a directive with no rule or reason.
func Fiddle() int {
	//lint:ignore
	return 2
}
