// Package use exercises obscheck: literal-name grammar, the one-call-site
// rule, and Sub prefix validation.
package use

import "fixture/obsfix/obs"

var dynamic = "computed." + "name"

func register(r *obs.Registry) {
	r.Counter("good.counter")
	r.Gauge("single")           // want `\[obscheck\] obs name "single": want lowercase`
	r.Histogram("Bad.Upper", 1) // want `\[obscheck\] obs name "Bad\.Upper"`
	r.EventType("good.event", "k")
	r.Counter(dynamic)   // want `\[obscheck\] obs Counter name must be a string literal`
	r.Gauge("trailing.") // want `\[obscheck\] obs name "trailing\."`
	r.Counter("dup.metric")
	r.Gauge("dup.metric") // want `\[obscheck\] obs name "dup\.metric" already registered at .*use\.go:17`
	r.Sub("shard")
	r.Sub("Shard") // want `\[obscheck\] obs Sub prefix "Shard"`
	sub := r.Sub(dynamic)
	sub.Counter("scoped.ok")
	r.SpanName("good.span")
	r.SpanName("spanless")   // want `\[obscheck\] obs name "spanless": want lowercase`
	r.SpanName(dynamic)      // want `\[obscheck\] obs SpanName name must be a string literal`
	r.SpanName("dup.metric") // want `\[obscheck\] obs name "dup\.metric" already registered at .*use\.go:17`
	r.Doc("good.counter", "documented")
	r.Doc("Bad.Doc", "grammar checked") // want `\[obscheck\] obs name "Bad\.Doc"`
	r.Doc(dynamic, "literal checked")   // want `\[obscheck\] obs Doc name must be a string literal`
}
