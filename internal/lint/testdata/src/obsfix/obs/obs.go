// Package obs is a fixture stand-in for the production telemetry
// registry: the same method surface obscheck resolves against, with no
// behaviour.
package obs

type Registry struct{}

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

type EventType struct{}

type SpanName struct{}

func (r *Registry) Counter(name string) *Counter { return nil }

func (r *Registry) Gauge(name string) *Gauge { return nil }

func (r *Registry) Histogram(name string, bounds ...int64) *Histogram { return nil }

func (r *Registry) EventType(name string, keys ...string) *EventType { return nil }

func (r *Registry) SpanName(name string) *SpanName { return nil }

func (r *Registry) Doc(name, doc string) {}

func (r *Registry) Sub(prefix string) *Registry { return nil }
