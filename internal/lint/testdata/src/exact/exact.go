// Package exact pins analyzer-exact ignore matching: a directive only
// ever suppresses findings of the analyzer it names, even when several
// analyzers report on the same line, and naming an unknown analyzer is
// itself a finding rather than a silent no-op.
package exact

import "time"

func helper(t time.Time) error { return nil }

// Mixed produces errdrop and determinism findings on one line; the
// directive suppresses only the errdrop one.
func Mixed() {
	//lint:ignore errdrop exactness regression: only errdrop is suppressed
	_ = helper(time.Now()) // want `\[determinism\] time\.Now`
}

// Cross carries a directive naming a different analyzer than the finding
// on its line: nothing is consumed and the directive is unused.
func Cross() {
	//lint:ignore determinism names the wrong analyzer on purpose // want `unused //lint:ignore determinism directive`
	_ = helper(time.Unix(0, 0)) // want `\[errdrop\] helper returns an error`
}

// Typo names an analyzer that does not exist: the directive is rejected
// outright and cannot consume the finding below it.
func Typo() {
	//lint:ignore errdorp a typo must not consume anything // want `names unknown analyzer "errdorp"`
	_ = helper(time.Unix(0, 0)) // want `\[errdrop\] helper returns an error`
}
