// Package hotesc backs the escape-analysis cross-check test: the test
// fabricates compiler diagnostics on the MARK lines and asserts only the
// one inside a hot, non-panic span is reported.
package hotesc

// Warm is hot; a fabricated escape diagnostic on its MARK line must fire.
//
// hotpath: no alloc
func Warm(p *int) int {
	return *p // MARK:warm
}

// Crash panics: a fabricated escape inside the panic call is exempt.
//
// hotpath: no alloc
func Crash(msg string) {
	panic("hotesc: " + msg) // MARK:crash
}

// Cool is not annotated; escapes here are nobody's business.
func Cool() []int {
	return make([]int, 3) // MARK:cool
}
