// Package atomicpub exercises both halves of the atomicpub analyzer:
// mixed atomic/plain field access, and writes to immutable-after-publish
// types outside construction.
package atomicpub

import "sync/atomic"

// Ctr mixes atomic and plain access to hits; cold is plain-only and fine.
type Ctr struct {
	hits uint64
	cold uint64
}

// Bump is the atomic writer that marks hits as an atomic field.
func (c *Ctr) Bump() { atomic.AddUint64(&c.hits, 1) }

// Peek reads the atomic field plainly: a race.
func (c *Ctr) Peek() uint64 {
	return c.hits // want `plain access to Ctr\.hits, which is accessed with atomic\.AddUint64 elsewhere`
}

// Reset writes it plainly: also a race.
func (c *Ctr) Reset() {
	c.hits = 0 // want `plain access to Ctr\.hits`
	c.cold = 0
}

// Read is the sanctioned accessor.
func (c *Ctr) Read() uint64 { return atomic.LoadUint64(&c.hits) }

// Snap is a published compiled table.
//
// Snap is immutable after publish.
type Snap struct {
	gen  uint64
	rows []int
}

// Build constructs a Snap; it returns the type, so writes are allowed.
func Build(n int) *Snap {
	s := &Snap{}
	s.gen = 1
	s.rows = make([]int, n)
	s.rows[0] = n
	return s
}

// fill is a blessed builder helper.
//
// fill constructs Snap.
func fill(s *Snap, n int) {
	s.gen = uint64(n)
}

// Local writes a local built fresh in the same body: still unpublished.
func Local() {
	s := &Snap{}
	s.gen = 2
	fill(s, 3)
}

// Mutate writes a snapshot it did not build: the violation.
func Mutate(s *Snap) {
	s.gen++       // want `write to Snap outside construction`
	s.rows[0] = 9 // want `write to Snap outside construction`
}

// Table is an immutable-after-publish map type.
//
// Table is immutable after publish.
type Table map[string]int

// NewTable builds one.
func NewTable() Table {
	t := make(Table)
	t["a"] = 1
	return t
}

// Poke writes through a parameter: published state.
func Poke(t Table) {
	t["b"] = 2 // want `write to Table outside construction`
}
