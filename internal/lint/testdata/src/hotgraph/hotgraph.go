// Package hotgraph provides the call-graph shapes the builder tests pin:
// recursive edges and method-value edges, the two most likely to be
// silently dropped.
package hotgraph

// Rec recurses before allocating.
func Rec(n int) []int {
	if n == 0 {
		return nil
	}
	_ = Rec(n - 1)
	return make([]int, n)
}

// Box carries a method used as a value.
type Box struct{ n int }

// Grow allocates.
func (b *Box) Grow() []int { return make([]int, b.n) }

// TakeValue binds Grow without calling it: the edge must still exist.
func TakeValue(b *Box) func() []int {
	g := b.Grow
	return g
}

// CallsHelper references a package function as a value (no closure, but
// still an edge).
func CallsHelper() func() {
	return helper
}

func helper() {}
