package lint

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture type-checks fixture packages under testdata/src; fixtures
// import each other (and are imported by the rule tables) as "fixture/<dir>".
func loadFixture(t *testing.T, paths ...string) *Program {
	t.Helper()
	l := NewLoader(filepath.Join("testdata", "src"), "fixturemod")
	l.FixtureRoot = filepath.Join("testdata", "src")
	l.FixturePrefix = "fixture/"
	for _, p := range paths {
		if _, err := l.Load("fixture/" + p); err != nil {
			t.Fatalf("load fixture %s: %v", p, err)
		}
	}
	return l.Program()
}

// wantSpec is one expectation parsed from a `want "regexp"` comment; the
// regexp is matched against `[rule] message` of diagnostics reported on the
// comment's line.
type wantSpec struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile("want\\s+[\"`]((?:[^\"`\\\\]|\\\\.)*)[\"`]")

// collectWants scans every comment of the program for want expectations.
func collectWants(t *testing.T, prog *Program) []*wantSpec {
	t.Helper()
	var wants []*wantSpec
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v",
								prog.Fset.Position(c.Pos()), m[1], err)
						}
						pos := prog.Fset.Position(c.Pos())
						wants = append(wants, &wantSpec{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// checkFixture runs the analyzers and asserts one-to-one coverage between
// diagnostics and want comments.
func checkFixture(t *testing.T, prog *Program, rules *Rules, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	diags := Run(prog, rules, analyzers)
	wants := collectWants(t, prog)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line &&
				w.re.MatchString("["+d.Rule+"] "+d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	return diags
}

func TestLockCheckFixture(t *testing.T) {
	prog := loadFixture(t, "lock")
	checkFixture(t, prog, &Rules{LockPkgs: []string{"fixture/lock"}}, []*Analyzer{LockCheck})
}

func TestDeterminismFixture(t *testing.T) {
	prog := loadFixture(t, "determ")
	checkFixture(t, prog, &Rules{DetermPkgs: []string{"fixture/determ"}}, []*Analyzer{Determinism})
}

func TestLayeringFixture(t *testing.T) {
	// layera is pulled in transitively through layerb's imports.
	prog := loadFixture(t, "layers/layerb", "layers/layerc")
	rules := &Rules{
		LayerScope: "fixture/layers/",
		Layer: map[string][]string{
			"fixture/layers/layera": {},
			"fixture/layers/layerb": {"fixture/layers/layera"},
		},
		Construct: []ConstructRule{{
			Func:    "fixture/layers/layerc.NewWidget",
			Allowed: []string{"fixture/layers/layera"},
		}},
	}
	checkFixture(t, prog, rules, []*Analyzer{Layering})
}

func TestWireSafeFixture(t *testing.T) {
	prog := loadFixture(t, "wire")
	rules := &Rules{
		WireRootPkgs:     []string{"fixture/wire"},
		WireRootSuffixes: []string{"Request", "Reply", "Report"},
		WireRoots:        []string{"fixture/wire.SideChannel"},
		WireIfaceAllow:   []string{"fixture/wire.Classifier"},
		WireTypeAllow:    []string{"fixture/wire.Blob"},
	}
	checkFixture(t, prog, rules, []*Analyzer{WireSafe})
}

func TestObsCheckFixture(t *testing.T) {
	prog := loadFixture(t, "obsfix/use")
	checkFixture(t, prog, &Rules{ObsPkg: "fixture/obsfix/obs"}, []*Analyzer{ObsCheck})
}

func TestErrDropFixture(t *testing.T) {
	prog := loadFixture(t, "errdrop")
	checkFixture(t, prog, &Rules{ErrAllowNames: []string{"Close"}}, []*Analyzer{ErrDrop})
}

func TestHotPathFixture(t *testing.T) {
	prog := loadFixture(t, "hot")
	checkFixture(t, prog, &Rules{}, []*Analyzer{HotPath})
}

func TestAtomicPubFixture(t *testing.T) {
	prog := loadFixture(t, "atomicpub")
	checkFixture(t, prog, &Rules{}, []*Analyzer{AtomicPub})
}

func TestLockOrderFixture(t *testing.T) {
	prog := loadFixture(t, "lockord")
	checkFixture(t, prog, &Rules{LockPkgs: []string{"fixture/lockord"}}, []*Analyzer{LockOrder})
}

// TestIgnoreExactness pins analyzer-exact suppression: a directive only
// consumes findings of the analyzer it names, and unknown names are
// rejected rather than silently swallowing the line below.
func TestIgnoreExactness(t *testing.T) {
	prog := loadFixture(t, "exact")
	checkFixture(t, prog, &Rules{DetermPkgs: []string{"fixture/exact"}},
		[]*Analyzer{Determinism, ErrDrop})
}

// TestIgnoreDirectives checks the machinery itself: a stale suppression and
// a malformed directive are both findings under the pseudo-rule "lint".
func TestIgnoreDirectives(t *testing.T) {
	prog := loadFixture(t, "ignores")
	diags := Run(prog, &Rules{}, []*Analyzer{ErrDrop})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	var unused, malformed bool
	for _, d := range diags {
		if d.Rule != "lint" {
			t.Errorf("diagnostic rule = %q, want \"lint\": %s", d.Rule, d)
		}
		if strings.Contains(d.Message, "unused") {
			unused = true
		}
		if strings.Contains(d.Message, "malformed") {
			malformed = true
		}
	}
	if !unused || !malformed {
		t.Errorf("missing expected findings (unused=%v malformed=%v): %v", unused, malformed, diags)
	}
}

// TestAnalyzersComplete pins the production analyzer set.
func TestAnalyzersComplete(t *testing.T) {
	want := []string{"lockcheck", "lockorder", "hotpath", "atomicpub",
		"determinism", "layering", "wiresafe", "errdrop", "obscheck"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}

// TestRepoIsClean loads the whole module and asserts the production rules
// produce zero findings — the same gate `make verify` runs, including the
// compiler escape cross-check (some hot-path suppressions exist only for
// escape findings; without Escapes they would report as unused).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewLoader(root, "repro").LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	rules := DefaultRules()
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m: %v\n%s", err, out)
	}
	rules.Escapes = ParseEscapes(root, out)
	diags := Run(prog, rules, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
